#include "des/scheduler.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace dgmc::des {
namespace {

TEST(Scheduler, StartsAtTimeZeroAndEmpty) {
  Scheduler s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  double fired_at = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_after(5.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Scheduler, NestedSchedulingDuringCallback) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1.0, recurse);
  };
  s.schedule_at(0.0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(s.now(), 4.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto id = s.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel fails
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelOneOfMany) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  const auto id = s.schedule_at(2.0, [&] { order.push_back(2); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, PendingCountsNonCancelled) {
  Scheduler s;
  const auto a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  s.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Scheduler, RunUntilInclusiveOfBoundaryTime) {
  Scheduler s;
  int count = 0;
  s.schedule_at(2.0, [&] { ++count; });
  s.run_until(2.0);
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, PendingEventsEnumeratesInExecutionOrder) {
  Scheduler s;
  EventTag tag;
  tag.kind = EventTag::Kind::kDelivery;
  tag.node = 7;
  s.schedule_at(3.0, [] {});
  s.schedule_at(1.0, tag, [] {});
  s.schedule_at(1.0, [] {});  // same time, scheduled later -> after tag
  const auto pending = s.pending_events();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_DOUBLE_EQ(pending[0].time, 1.0);
  EXPECT_EQ(pending[0].tag.kind, EventTag::Kind::kDelivery);
  EXPECT_EQ(pending[0].tag.node, 7);
  EXPECT_DOUBLE_EQ(pending[1].time, 1.0);
  EXPECT_EQ(pending[1].tag.kind, EventTag::Kind::kOpaque);
  EXPECT_DOUBLE_EQ(pending[2].time, 3.0);
  EXPECT_LT(pending[0].seq, pending[1].seq);
}

TEST(Scheduler, PendingEventsExcludesCancelled) {
  Scheduler s;
  s.schedule_at(1.0, [] {});
  const auto id = s.schedule_at(2.0, [] {});
  s.cancel(id);
  const auto pending = s.pending_events();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_DOUBLE_EQ(pending[0].time, 1.0);
}

TEST(Scheduler, RunEventExecutesOutOfOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] { order.push_back(1); });
  const auto late = s.schedule_at(5.0, [&] { order.push_back(5); });
  // Running the t=5 event first models an arbitrarily slow network:
  // the clock jumps forward, and the t=1 event still runs afterwards
  // (at clock 5, never backwards).
  EXPECT_TRUE(s.run_event(late));
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_FALSE(s.run_event(late));  // already executed
  s.run();
  EXPECT_EQ(order, (std::vector<int>{5, 1}));
  EXPECT_DOUBLE_EQ(s.now(), 5.0);  // t=1 ran late, clock did not retreat
}

TEST(Scheduler, RunEventRefusesCancelled) {
  Scheduler s;
  const auto id = s.schedule_at(1.0, [] {});
  s.cancel(id);
  EXPECT_FALSE(s.run_event(id));
}

TEST(Scheduler, CancelThenRescheduleGoesToBackOfTie) {
  // A cancel + re-schedule at the same time must not inherit the old
  // FIFO position: the fresh event gets a fresh sequence number and
  // runs after everything already queued at that time.
  Scheduler s;
  std::vector<int> order;
  const auto id = s.schedule_at(2.0, [&] { order.push_back(0); });
  s.schedule_at(2.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.cancel(id);
  s.schedule_at(2.0, [&] { order.push_back(0); });
  const auto pending = s.pending_events();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_LT(pending[0].seq, pending[1].seq);
  EXPECT_LT(pending[1].seq, pending[2].seq);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

// The incrementally maintained pending_events() view must track every
// mutation kind — schedule, cancel, out-of-order run_event, step — and
// stay exactly (time, seq)-sorted throughout. This pins the
// enumeration order the explorer's action list is built from.
TEST(Scheduler, PendingEventsOrderPinnedAcrossMutations) {
  Scheduler s;
  const auto a = s.schedule_at(5.0, [] {});
  const auto b = s.schedule_at(1.0, [] {});
  const auto c = s.schedule_at(5.0, [] {});  // ties with a, scheduled later
  const auto d = s.schedule_at(3.0, [] {});
  auto expect_ids = [&](const std::vector<Scheduler::EventId>& ids) {
    const auto& p = s.pending_events();
    ASSERT_EQ(p.size(), ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(p[i].id.value, ids[i].value) << "position " << i;
    }
    for (std::size_t i = 1; i < p.size(); ++i) {
      EXPECT_TRUE(p[i - 1].time < p[i].time ||
                  (p[i - 1].time == p[i].time && p[i - 1].seq < p[i].seq));
    }
  };
  expect_ids({b, d, a, c});
  s.cancel(d);
  expect_ids({b, a, c});
  EXPECT_TRUE(s.run_event(c));  // out-of-order execution, now() -> 5.0
  expect_ids({b, a});
  const auto e = s.schedule_at(5.0, [] {});  // new seq: after a in the tie
  expect_ids({b, a, e});
  s.step();  // executes b (earliest remaining)
  expect_ids({a, e});
}

TEST(Scheduler, SnapshotRestoreReproducesExecutionSuffix) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    s.schedule_at(1.0 + i, [&order, i] { order.push_back(i); });
  }
  s.step();
  s.step();
  Scheduler::Snapshot snap;
  s.save(snap);

  EXPECT_EQ(s.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.executed(), 6u);

  s.restore(snap);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.executed(), 2u);
  EXPECT_EQ(s.pending(), 4u);
  order.clear();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 5}));
}

// Restoring also restores the seq/id counters, so an event scheduled
// *after* a restore gets the same FIFO position (and the same EventId)
// it would have gotten on the original timeline.
TEST(Scheduler, SnapshotRestorePreservesFifoCounters) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  Scheduler::Snapshot snap;
  s.save(snap);
  const auto original = s.schedule_at(1.0, [&order] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));

  s.restore(snap);
  order.clear();
  const auto rescheduled =
      s.schedule_at(1.0, [&order] { order.push_back(3); });
  EXPECT_EQ(rescheduled.value, original.value);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, SnapshotKeepsCancelledEventsOut) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(1.0, [] {});
  const auto id = s.schedule_at(2.0, [&] { ran = true; });
  s.cancel(id);
  Scheduler::Snapshot snap;
  s.save(snap);
  EXPECT_EQ(snap.events.size(), 1u);
  s.restore(snap);
  s.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, SnapshotReusesCapacityAcrossSaves) {
  // The pool hands the same Snapshot back repeatedly; save() must
  // overwrite, not accumulate.
  Scheduler s;
  s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  Scheduler::Snapshot snap;
  s.save(snap);
  EXPECT_EQ(snap.events.size(), 2u);
  s.step();
  s.save(snap);
  EXPECT_EQ(snap.events.size(), 1u);
}

TEST(SchedulerDeath, RejectsSchedulingIntoPast) {
  Scheduler s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_DEATH(s.schedule_at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace dgmc::des
