// Acceptance tests for the systematic exploration subsystem: the
// correct protocol survives exploration, and a deliberately broken
// protocol (acceptance guard relaxed) is caught with a deterministic,
// replayable counterexample.
#include "check/explorer.hpp"

#include <gtest/gtest.h>

#include "check/minimize.hpp"

namespace dgmc::check {
namespace {

ScenarioSpec spec(const char* name, bool break_accept = false) {
  const ScenarioSpec* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  ScenarioSpec out = *s;
  out.params.dgmc.accept_stale_proposals = break_accept;
  return out;
}

// Every interleaving of the two-concurrent-join race, to full
// execution depth: the strongest claim the subsystem makes about the
// protocol. (~65k distinct states; executions end at depth 30.)
TEST(CheckAcceptance, TwoJoinExhaustiveNoViolations) {
  SearchLimits limits;
  limits.max_depth = 40;
  const SearchResult r = explore_dfs(spec("triangle-2join"), limits);
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->oracle << ": " << r.violation->detail;
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.stats.depth_cutoffs, 0u);
  EXPECT_GT(r.stats.executions, 0u);
  EXPECT_GT(r.stats.states_seen, 10000u);
}

// The join-leave scenario explored exhaustively to the stated depth.
// Depth 12 covers every placement of all three injections among the
// first nine protocol actions — including the leave-preempts-join
// flooding reorder that once resurrected a departed member (see
// DgmcSwitch::maybe_destroy).
TEST(CheckAcceptance, JoinLeaveExhaustiveToDepth12NoViolations) {
  SearchLimits limits;
  limits.max_depth = 12;
  const SearchResult r = explore_dfs(spec("triangle-join-leave"), limits);
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->oracle << ": " << r.violation->detail;
  EXPECT_EQ(r.stats.max_depth_reached, 12u);
  EXPECT_GT(r.stats.states_seen, 1000u);
}

// Delay-bounded search drives the same scenario through *complete*
// executions (so the quiescence oracles run), deviating from the
// native schedule by up to 3 delays.
TEST(CheckAcceptance, JoinLeaveDelayBoundedNoViolations) {
  SearchLimits limits;
  limits.max_depth = 60;
  limits.delay_budget = 3;
  const SearchResult r =
      explore_delay_bounded(spec("triangle-join-leave"), limits);
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->oracle << ": " << r.violation->detail;
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.stats.executions, 100u);
}

TEST(CheckAcceptance, RandomWalksNoViolations) {
  SearchLimits limits;
  limits.max_depth = 80;
  limits.walks = 200;
  limits.seed = 7;
  const SearchResult r = explore_random(spec("triangle-join-leave"), limits);
  ASSERT_FALSE(r.violation.has_value())
      << r.violation->oracle << ": " << r.violation->detail;
  EXPECT_EQ(r.stats.executions, 200u);
}

// The deliberately broken build: proposals are accepted without the
// T >= E dominance test. The search must find a violation, the trace
// must replay to the *same* violation, and replay must be
// deterministic run to run.
TEST(CheckAcceptance, BrokenAcceptGuardIsCaughtAndReplays) {
  SearchLimits limits;
  limits.max_depth = 14;
  const ScenarioSpec broken = spec("triangle-join-leave", /*break_accept=*/true);
  const SearchResult r = explore_dfs(broken, limits);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->oracle, "install-monotone");
  EXPECT_TRUE(r.trace.accept_stale_proposals);
  EXPECT_FALSE(r.trace.choices.empty());
  EXPECT_EQ(r.annotations.size(), r.trace.choices.size());

  const ReplayResult first = replay(broken, r.trace);
  const ReplayResult second = replay(broken, r.trace);
  for (const ReplayResult* rr : {&first, &second}) {
    ASSERT_FALSE(rr->divergence.has_value()) << *rr->divergence;
    ASSERT_TRUE(rr->violation.has_value());
    EXPECT_EQ(rr->violation->oracle, r.violation->oracle);
    EXPECT_EQ(rr->violation->detail, r.violation->detail);
    EXPECT_EQ(rr->violation_step, r.trace.choices.size());
  }
}

// The same fault is visible to every strategy (different oracles may
// fire first: DFS hits the per-step monotonicity check, full random
// executions reach the quiescence agreement check).
TEST(CheckAcceptance, BrokenAcceptGuardCaughtByAllStrategies) {
  const ScenarioSpec broken = spec("triangle-join-leave", /*break_accept=*/true);
  SearchLimits limits;
  limits.max_depth = 60;
  limits.delay_budget = 3;
  limits.walks = 500;
  EXPECT_TRUE(explore_delay_bounded(broken, limits).violation.has_value());
  EXPECT_TRUE(explore_random(broken, limits).violation.has_value());
}

TEST(CheckAcceptance, CleanTraceReplaysWithoutViolation) {
  // A native-order execution recorded as a trace replays cleanly.
  const ScenarioSpec s = spec("triangle-join-leave");
  Executor exec(s);
  Trace t;
  t.scenario = s.name;
  while (!exec.done()) {
    t.choices.push_back(0);
    exec.step(0);
  }
  std::vector<std::string> log;
  const ReplayResult rr = replay(s, t, &log);
  EXPECT_FALSE(rr.violation.has_value());
  EXPECT_FALSE(rr.divergence.has_value());
  EXPECT_EQ(rr.steps_executed, t.choices.size());
  EXPECT_EQ(log.size(), t.choices.size());
}

TEST(CheckAcceptance, ReplayDetectsForeignTrace) {
  const ScenarioSpec s = spec("triangle-2join");
  Trace t;
  t.scenario = s.name;
  t.choices = {0, 0, 99};  // 99 cannot be a valid index this early
  const ReplayResult rr = replay(s, t);
  ASSERT_TRUE(rr.divergence.has_value());
  EXPECT_FALSE(rr.violation.has_value());
}

TEST(CheckMinimize, ShrinksBrokenAcceptCounterexample) {
  SearchLimits limits;
  limits.max_depth = 14;
  const ScenarioSpec broken = spec("triangle-join-leave", /*break_accept=*/true);
  const SearchResult r = explore_dfs(broken, limits);
  ASSERT_TRUE(r.violation.has_value());

  std::string error;
  const auto min =
      minimize_trace(r.trace, r.violation->oracle, limits, &error);
  ASSERT_TRUE(min.has_value()) << error;
  // The leave is not needed to accept a stale proposal; two racing
  // joins suffice, so at least one injection must drop.
  EXPECT_GE(min->injections_dropped, 1u);
  EXPECT_EQ(min->violation.oracle, r.violation->oracle);
  EXPECT_LE(min->trace.choices.size(), r.trace.choices.size());

  // The minimized trace still replays to the same oracle's violation.
  std::optional<ScenarioSpec> min_spec = resolve_spec(min->trace, &error);
  ASSERT_TRUE(min_spec.has_value()) << error;
  EXPECT_LT(min_spec->injections.size(), broken.injections.size());
  const ReplayResult rr = replay(*min_spec, min->trace);
  ASSERT_TRUE(rr.violation.has_value());
  EXPECT_EQ(rr.violation->oracle, r.violation->oracle);
}

}  // namespace
}  // namespace dgmc::check
