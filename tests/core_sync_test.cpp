// Unit tests for the McSync export/merge logic (partition resync
// extension), driving DgmcSwitch directly with crafted syncs.
#include "core/sync.hpp"

#include <gtest/gtest.h>

#include "des/scheduler.hpp"

#include "core/protocol.hpp"
#include "graph/generators.hpp"

namespace dgmc::core {
namespace {

using trees::Topology;

struct Fixture {
  explicit Fixture(graph::NodeId self = 0)
      : image(graph::ring(6)),
        algorithm(mc::make_from_scratch_algorithm()) {
    DgmcSwitch::Hooks hooks;
    hooks.flood = [this](const McLsa& lsa) { flooded.push_back(lsa); };
    hooks.local_image = [this]() -> const graph::Graph& { return image; };
    DgmcConfig cfg;
    cfg.computation_time = 1.0;
    sw = std::make_unique<DgmcSwitch>(self, image.node_count(), sched,
                                      *algorithm, cfg, std::move(hooks));
  }

  McLsa join_lsa(graph::NodeId source, std::uint32_t own_index) {
    McLsa lsa;
    lsa.source = source;
    lsa.event = McEventType::kJoin;
    lsa.mc = 0;
    lsa.stamp = VectorTimestamp(6);
    for (std::uint32_t i = 0; i < own_index; ++i) {
      lsa.stamp.increment(source);
    }
    return lsa;
  }

  des::Scheduler sched;
  graph::Graph image;
  std::unique_ptr<mc::TopologyAlgorithm> algorithm;
  std::unique_ptr<DgmcSwitch> sw;
  std::vector<McLsa> flooded;
};

TEST(McSyncExport, SummarizesKnownHistory) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->receive(f.join_lsa(2, 1));
  f.sched.run();

  ASSERT_TRUE(f.sw->has_state(0));
  const McSync sync = f.sw->export_sync(0);
  EXPECT_EQ(sync.source, 0);
  EXPECT_EQ(sync.mc, 0);
  ASSERT_EQ(sync.entries.size(), 2u);  // self and switch 2
  EXPECT_EQ(sync.entries[0].node, 0);
  EXPECT_EQ(sync.entries[0].events_heard, 1u);
  EXPECT_TRUE(sync.entries[0].is_member);
  EXPECT_EQ(sync.entries[1].node, 2);
  EXPECT_EQ(sync.entries[1].events_heard, 1u);
  EXPECT_TRUE(sync.entries[1].is_member);
  EXPECT_EQ(sync.entries[1].member_event_index, 1u);
}

TEST(McSyncExport, KnownMcsListsStates) {
  Fixture f;
  EXPECT_TRUE(f.sw->known_mcs().empty());
  f.sw->local_join(3, mc::McType::kSymmetric);
  f.sw->local_join(7, mc::McType::kReceiverOnly, mc::MemberRole::kReceiver);
  f.sched.run();
  EXPECT_EQ(f.sw->known_mcs(), (std::vector<mc::McId>{3, 7}));
}

TEST(McSyncApply, AdoptsAuthoritativeView) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();

  // The far partition reports: switch 4 joined (1 event) and switch 5
  // joined then left (2 events).
  McSync sync;
  sync.source = 3;
  sync.mc = 0;
  sync.mc_type = mc::McType::kSymmetric;
  sync.entries.push_back(
      McSyncEntry{4, 1, 1, true, mc::MemberRole::kBoth});
  sync.entries.push_back(
      McSyncEntry{5, 2, 2, false, mc::MemberRole::kNone});
  f.sw->apply_sync(sync);

  EXPECT_TRUE(f.sw->members(0)->contains(4));
  EXPECT_FALSE(f.sw->members(0)->contains(5));
  EXPECT_EQ((*f.sw->stamp_r(0))[4], 1u);
  EXPECT_EQ((*f.sw->stamp_r(0))[5], 2u);
  // Learning something raises the proposal machinery.
  EXPECT_TRUE(f.sw->computing() || f.sw->proposal_flag(0));
  f.sched.run();
  // The reconciliation proposal covers the merged members {0, 4}.
  ASSERT_FALSE(f.flooded.empty());
  ASSERT_TRUE(f.flooded.back().proposal.has_value());
  EXPECT_TRUE(
      trees::is_steiner_tree(*f.flooded.back().proposal, {0, 4}));
}

TEST(McSyncApply, StaleEntriesAreIgnored) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  // We already heard switch 2's join and leave (2 events).
  f.sw->receive(f.join_lsa(2, 1));
  f.sched.run();
  McLsa leave = f.join_lsa(2, 2);
  leave.event = McEventType::kLeave;
  f.sw->receive(leave);
  f.sched.run();
  ASSERT_TRUE(f.sw->has_state(0));
  ASSERT_FALSE(f.sw->members(0)->contains(2));

  // A sync that only knows switch 2's join (1 event) must not undo the
  // leave: our view is authoritative for switch 2.
  McSync sync;
  sync.source = 3;
  sync.mc = 0;
  sync.entries.push_back(
      McSyncEntry{2, 1, 1, true, mc::MemberRole::kBoth});
  f.sw->apply_sync(sync);
  EXPECT_FALSE(f.sw->members(0)->contains(2));
  EXPECT_EQ((*f.sw->stamp_r(0))[2], 2u);
}

TEST(McSyncApply, OwnOriginSyncIsNoOp) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  const McSync sync = f.sw->export_sync(0);  // our own summary
  const auto r_before = *f.sw->stamp_r(0);
  f.sw->apply_sync(sync);  // source == self: ignored entirely
  EXPECT_EQ(*f.sw->stamp_r(0), r_before);
  EXPECT_FALSE(f.sw->computing());
}

TEST(McSyncApply, CreatesStateForUnknownMc) {
  Fixture f;
  McSync sync;
  sync.source = 1;
  sync.mc = 9;
  sync.mc_type = mc::McType::kReceiverOnly;
  sync.entries.push_back(
      McSyncEntry{2, 1, 1, true, mc::MemberRole::kReceiver});
  f.sw->apply_sync(sync);
  ASSERT_TRUE(f.sw->has_state(9));
  EXPECT_EQ(f.sw->mc_type(9), mc::McType::kReceiverOnly);
  EXPECT_TRUE(f.sw->members(9)->contains(2));
}

TEST(McSyncApply, EmptyMemberListAfterMergeDestroysState) {
  Fixture f;
  // We know only switch 2's join; the sync knows its leave.
  f.sw->receive(f.join_lsa(2, 1));
  f.sched.run();
  ASSERT_TRUE(f.sw->has_state(0));
  McSync sync;
  sync.source = 3;
  sync.mc = 0;
  sync.entries.push_back(
      McSyncEntry{2, 2, 2, false, mc::MemberRole::kNone});
  f.sw->apply_sync(sync);
  EXPECT_FALSE(f.sw->has_state(0));
}

TEST(McSyncApply, EqualEventsHeardTeachesNothing) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->receive(f.join_lsa(2, 1));
  f.sched.run();
  const auto r_before = *f.sw->stamp_r(0);
  f.flooded.clear();

  // A peer with the exact same view of switch 2: equal events_heard on
  // both sides means neither is authoritative and nothing may change —
  // in particular no spurious reconciliation proposal.
  McSync sync;
  sync.source = 3;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{2, 1, 1, true, mc::MemberRole::kBoth});
  f.sw->apply_sync(sync);
  f.sched.run();

  EXPECT_EQ(*f.sw->stamp_r(0), r_before);
  EXPECT_TRUE(f.sw->members(0)->contains(2));
  EXPECT_FALSE(f.sw->proposal_flag(0));
  EXPECT_TRUE(f.flooded.empty());
}

TEST(McSyncApply, SyncForDestroyedMcStaysDestroyed) {
  Fixture f;
  // Join then leave: destroy_on_empty erases the state.
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->local_leave(0);
  f.sched.run();
  ASSERT_FALSE(f.sw->has_state(0));

  // A straggler sync describing the dead connection's full history
  // (nobody is a member anymore) must not resurrect it.
  McSync sync;
  sync.source = 3;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{0, 2, 2, false, mc::MemberRole::kNone});
  sync.entries.push_back(McSyncEntry{4, 2, 2, false, mc::MemberRole::kNone});
  f.sw->apply_sync(sync);
  EXPECT_FALSE(f.sw->has_state(0));
}

TEST(McSyncApply, AdoptsFresherInstalledTopology) {
  Fixture f(/*self=*/3);
  // A peer relays its accepted proposal: members {1, 2}, tree 1-2,
  // stamped with the full history the entries describe.
  McSync sync;
  sync.source = 1;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{1, 1, 1, true, mc::MemberRole::kBoth});
  sync.entries.push_back(McSyncEntry{2, 1, 1, true, mc::MemberRole::kBoth});
  sync.installed = Topology({graph::Edge(1, 2)});
  sync.c = VectorTimestamp(6);
  sync.c.increment(1);
  sync.c.increment(2);
  sync.c_origin = 1;
  f.sw->apply_sync(sync);
  f.sched.run();

  // The stateless receiver adopts tree and stamp outright; since the
  // adopted C equals the merged R, the proposal gate stays shut — no
  // competing proposal is raced through the tie-break.
  ASSERT_TRUE(f.sw->has_state(0));
  EXPECT_EQ(*f.sw->installed(0), sync.installed);
  EXPECT_EQ(*f.sw->stamp_c(0), sync.c);
  EXPECT_TRUE(f.flooded.empty());
}

TEST(McSyncApply, StaleInstalledTopologyIsNotAdopted) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->receive(f.join_lsa(2, 1));
  f.sched.run();
  ASSERT_FALSE(f.sw->installed(0)->empty());
  const Topology mine = *f.sw->installed(0);
  const VectorTimestamp c_mine = *f.sw->stamp_c(0);

  // A sync whose accepted topology predates ours (its C stamp does not
  // dominate) must not roll our installed tree back.
  McSync sync;
  sync.source = 4;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{2, 1, 1, true, mc::MemberRole::kBoth});
  sync.installed = Topology({graph::Edge(4, 5)});
  sync.c = VectorTimestamp(6);
  sync.c.increment(2);  // knows 2's join, not ours
  sync.c_origin = 4;
  f.sw->apply_sync(sync);

  EXPECT_EQ(*f.sw->installed(0), mine);
  EXPECT_EQ(*f.sw->stamp_c(0), c_mine);
}

TEST(CrashRecovery, CrashWipesAllMcState) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sw->local_join(5, mc::McType::kReceiverOnly, mc::MemberRole::kReceiver);
  f.sched.run();
  ASSERT_TRUE(f.sw->has_state(0));
  ASSERT_TRUE(f.sw->has_state(5));

  f.sw->crash();
  EXPECT_FALSE(f.sw->alive());
  EXPECT_FALSE(f.sw->has_state(0));
  EXPECT_FALSE(f.sw->has_state(5));
  EXPECT_EQ(f.sw->counters().crashes, 1u);

  // A dead switch ignores everything: no state is created, nothing is
  // flooded.
  f.flooded.clear();
  f.sw->receive(f.join_lsa(2, 1));
  f.sw->local_join(0, mc::McType::kSymmetric);
  EXPECT_FALSE(f.sw->has_state(0));
  EXPECT_TRUE(f.flooded.empty());
}

TEST(CrashRecovery, SyncRestoresOwnHistoryAndTriggersRejoin) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  ASSERT_EQ((*f.sw->stamp_r(0))[0], 1u);

  f.sw->crash();
  f.sw->restart();
  EXPECT_TRUE(f.sw->alive());
  ASSERT_FALSE(f.sw->has_state(0));
  f.flooded.clear();

  // A neighbor's sync remembers us: 1 event heard from us, and we were
  // a member. The switch must adopt that history (so its next event
  // index is fresh) and then announce recovery as a new join event.
  McSync sync;
  sync.source = 1;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{0, 1, 1, true, mc::MemberRole::kBoth});
  sync.entries.push_back(McSyncEntry{1, 1, 1, true, mc::MemberRole::kBoth});
  f.sw->apply_sync(sync);
  f.sched.run();

  ASSERT_TRUE(f.sw->has_state(0));
  EXPECT_TRUE(f.sw->members(0)->contains(0));
  // Adopted index 1, then the recovery join: R[self] is past every
  // watermark any peer can hold.
  EXPECT_EQ((*f.sw->stamp_r(0))[0], 2u);
  ASSERT_FALSE(f.flooded.empty());
  EXPECT_EQ(f.flooded.back().event, McEventType::kJoin);
  EXPECT_EQ(f.flooded.back().stamp[0], 2u);
}

TEST(CrashRecovery, SecondSyncDoesNotRejoinTwice) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->crash();
  f.sw->restart();
  McSync sync;
  sync.source = 1;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{0, 1, 1, true, mc::MemberRole::kBoth});
  f.sw->apply_sync(sync);
  f.sched.run();
  ASSERT_EQ((*f.sw->stamp_r(0))[0], 2u);

  // The same summary from another neighbor is now stale with respect
  // to our recovered counter: no second recovery event.
  sync.source = 5;
  f.flooded.clear();
  f.sw->apply_sync(sync);
  f.sched.run();
  EXPECT_EQ((*f.sw->stamp_r(0))[0], 2u);
  EXPECT_TRUE(f.flooded.empty());
}

TEST(McSyncApply, SyncArrivalWithdrawsInFlightComputation) {
  Fixture f;
  f.sw->local_join(0, mc::McType::kSymmetric);
  EXPECT_TRUE(f.sw->computing());
  McSync sync;  // teaches nothing, but counts as an arrival
  sync.source = 1;
  sync.mc = 0;
  f.sw->apply_sync(sync);
  f.sched.run();
  // The event-path proposal still floods (R unchanged, event path only
  // checks old_R == R) — but a *triggered* computation would have been
  // withdrawn; exercise that path too.
  f.flooded.clear();
  f.sw->receive(f.join_lsa(1, 1));
  // Proposal-flag gate fired a triggered computation...
  if (f.sw->computing()) {
    f.sw->apply_sync(sync);  // arrival during the window
    f.sched.run();
    EXPECT_GE(f.sw->counters().computations_withdrawn, 1u);
  }
}

}  // namespace
}  // namespace dgmc::core
