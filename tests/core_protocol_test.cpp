// Unit tests for DgmcSwitch against the paper's Figures 4 and 5,
// driving a single switch with hand-crafted LSAs and a controlled
// local image.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "des/scheduler.hpp"

#include "graph/generators.hpp"

namespace dgmc::core {
namespace {

using graph::Edge;
using trees::Topology;

constexpr des::SimTime kTc = 1.0;

struct Fixture {
  explicit Fixture(graph::Graph graph, graph::NodeId self = 0)
      : image(std::move(graph)),
        algorithm(mc::make_from_scratch_algorithm()) {
    DgmcSwitch::Hooks hooks;
    hooks.flood = [this](const McLsa& lsa) { flooded.push_back(lsa); };
    hooks.local_image = [this]() -> const graph::Graph& { return image; };
    hooks.on_install = [this](mc::McId, const trees::Topology&) {
      ++installs;
    };
    DgmcConfig cfg;
    cfg.computation_time = kTc;
    sw = std::make_unique<DgmcSwitch>(self, image.node_count(), sched,
                                      *algorithm, cfg, std::move(hooks));
  }

  VectorTimestamp stamp(std::initializer_list<std::uint32_t> counts) {
    VectorTimestamp t(image.node_count());
    int i = 0;
    for (std::uint32_t c : counts) {
      for (std::uint32_t k = 0; k < c; ++k) t.increment(i);
      ++i;
    }
    return t;
  }

  McLsa join_lsa(graph::NodeId source, VectorTimestamp t,
                 std::optional<Topology> proposal = std::nullopt) {
    McLsa lsa;
    lsa.source = source;
    lsa.event = McEventType::kJoin;
    lsa.mc = 0;
    lsa.mc_type = mc::McType::kSymmetric;
    lsa.join_role = mc::MemberRole::kBoth;
    lsa.stamp = std::move(t);
    lsa.proposal = std::move(proposal);
    return lsa;
  }

  McLsa triggered_lsa(graph::NodeId source, VectorTimestamp t,
                      Topology proposal) {
    McLsa lsa;
    lsa.source = source;
    lsa.event = McEventType::kNone;
    lsa.mc = 0;
    lsa.mc_type = mc::McType::kSymmetric;
    lsa.stamp = std::move(t);
    lsa.proposal = std::move(proposal);
    return lsa;
  }

  des::Scheduler sched;
  graph::Graph image;
  std::unique_ptr<mc::TopologyAlgorithm> algorithm;
  std::unique_ptr<DgmcSwitch> sw;
  std::vector<McLsa> flooded;
  int installs = 0;
};

TEST(EventHandler, FirstJoinComputesThenFloodsProposal) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  // Computation in flight; nothing flooded yet (Fig 4 lines 2-7).
  EXPECT_TRUE(f.sw->computing());
  EXPECT_TRUE(f.flooded.empty());
  f.sched.run();
  ASSERT_EQ(f.flooded.size(), 1u);
  const McLsa& lsa = f.flooded[0];
  EXPECT_EQ(lsa.event, McEventType::kJoin);
  EXPECT_EQ(lsa.source, 0);
  ASSERT_TRUE(lsa.proposal.has_value());
  EXPECT_TRUE(lsa.proposal->empty());  // single member: empty topology
  EXPECT_EQ(lsa.stamp, f.stamp({1}));
  // Installed locally with C = old_R (Fig 4 lines 8-10).
  EXPECT_EQ(*f.sw->stamp_c(0), f.stamp({1}));
  EXPECT_FALSE(f.sw->proposal_flag(0));
  EXPECT_EQ(f.installs, 1);
  EXPECT_EQ(f.sw->counters().computations_started, 1u);
}

TEST(ReceiveLsa, AcceptsUpToDateProposal) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  // Switch 1 joined and proposed 0-1 knowing our join.
  const Topology p({Edge(0, 1)});
  f.sw->receive(f.join_lsa(1, f.stamp({1, 1}), p));
  EXPECT_EQ(*f.sw->installed(0), p);
  EXPECT_EQ(*f.sw->stamp_c(0), f.stamp({1, 1}));
  EXPECT_EQ(f.sw->members(0)->all(), (std::vector<graph::NodeId>{0, 1}));
  EXPECT_FALSE(f.sw->computing());  // accepted, nothing to propose
  EXPECT_EQ(f.sw->counters().proposals_accepted, 1u);
}

TEST(ReceiveLsa, DetectsInconsistencyAndCounterProposes) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.flooded.clear();
  // Switch 1's join proposal does NOT reflect our join (T[0] = 0):
  // Fig 5 line 15 — R[x] > T[x] sets make_proposal_flag.
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1}), Topology{}));
  EXPECT_EQ(f.sw->counters().inconsistencies_detected, 1u);
  EXPECT_TRUE(f.sw->computing());  // trigger gate fired
  f.sched.run();
  ASSERT_EQ(f.flooded.size(), 1u);
  const McLsa& lsa = f.flooded[0];
  EXPECT_EQ(lsa.event, McEventType::kNone);  // triggered LSA
  ASSERT_TRUE(lsa.proposal.has_value());
  EXPECT_EQ(*lsa.proposal, Topology({Edge(0, 1)}));
  EXPECT_EQ(lsa.stamp, f.stamp({1, 1}));
  // E = R and C = R after the triggered flood (Fig 5 lines 23-26).
  EXPECT_EQ(*f.sw->stamp_e(0), f.stamp({1, 1}));
  EXPECT_EQ(*f.sw->stamp_c(0), f.stamp({1, 1}));
  EXPECT_FALSE(f.sw->proposal_flag(0));
}

TEST(ReceiveLsa, StaleProposalIgnoredWithoutFlagWhenConsistent) {
  Fixture f(graph::line(4));
  // We are not a member; hear joins from 1 then 2, then a proposal from
  // 1 that missed 2's join: not accepted (T >= E fails), but no
  // inconsistency either (our R[0] = 0 is reflected).
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1})));
  f.sw->receive(f.join_lsa(2, f.stamp({0, 0, 1})));
  f.sw->receive(f.triggered_lsa(1, f.stamp({0, 1}), Topology{}));
  EXPECT_EQ(f.sw->counters().proposals_ignored, 1u);
  EXPECT_FALSE(f.sw->proposal_flag(0));
  EXPECT_FALSE(f.sw->computing());
  EXPECT_TRUE(f.sw->installed(0)->empty());
}

TEST(ReceiveLsa, EqualStampTieBreakPrefersLowerProposer) {
  Fixture f(graph::line(4));
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1})));
  f.sw->receive(f.join_lsa(2, f.stamp({0, 1, 1})));
  const VectorTimestamp full = f.stamp({0, 1, 1});
  const Topology p2({Edge(1, 2)});
  const Topology p1({Edge(1, 2), Edge(2, 3)});
  const Topology p3({Edge(0, 1), Edge(1, 2)});
  f.sw->receive(f.triggered_lsa(2, full, p2));
  EXPECT_EQ(*f.sw->installed(0), p2);
  // Lower proposer id with the same stamp replaces...
  f.sw->receive(f.triggered_lsa(1, full, p1));
  EXPECT_EQ(*f.sw->installed(0), p1);
  // ...higher id does not.
  f.sw->receive(f.triggered_lsa(3, full, p3));
  EXPECT_EQ(*f.sw->installed(0), p1);
  EXPECT_EQ(f.sw->counters().proposals_ignored, 1u);
}

TEST(EventHandler, WithdrawsProposalWhenEventsArriveMidComputation) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  EXPECT_TRUE(f.sw->computing());
  // A join from switch 1 lands while we compute: R advances past old_R.
  f.sched.run_until(kTc / 2);
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1})));
  f.sched.run();
  // Fig 4 lines 11-13: the event LSA goes out WITHOUT the proposal...
  ASSERT_GE(f.flooded.size(), 1u);
  EXPECT_EQ(f.flooded[0].event, McEventType::kJoin);
  EXPECT_FALSE(f.flooded[0].proposal.has_value());
  EXPECT_EQ(f.flooded[0].stamp, f.stamp({1}));  // old_R
  EXPECT_EQ(f.sw->counters().computations_withdrawn, 1u);
  // ...and the trigger gate then produces the up-to-date proposal.
  ASSERT_EQ(f.flooded.size(), 2u);
  EXPECT_EQ(f.flooded[1].event, McEventType::kNone);
  ASSERT_TRUE(f.flooded[1].proposal.has_value());
  EXPECT_EQ(*f.flooded[1].proposal, Topology({Edge(0, 1)}));
  EXPECT_EQ(f.flooded[1].stamp, f.stamp({1, 1}));
}

TEST(ReceiveLsa, TriggeredComputationWithdrawnOnMidFlightArrival) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.flooded.clear();
  // Inconsistent proposal starts a triggered computation...
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1}), Topology{}));
  EXPECT_TRUE(f.sw->computing());
  // ...but an acceptable proposal arrives before it completes
  // (Fig 5 line 22's mailbox check): ours must be withdrawn.
  f.sched.run_until(f.sched.now() + kTc / 2);
  f.sw->receive(f.triggered_lsa(1, f.stamp({1, 1}), Topology({Edge(0, 1)})));
  f.sched.run();
  EXPECT_TRUE(f.flooded.empty());  // nothing flooded by us
  EXPECT_EQ(f.sw->counters().computations_withdrawn, 1u);
  EXPECT_EQ(*f.sw->installed(0), Topology({Edge(0, 1)}));
}

TEST(EventHandler, DefersWhenExpectingOutstandingLsas) {
  Fixture f(graph::line(4));
  // Switch 1's join carries a stamp that also reflects an event from
  // switch 2 we have not seen: after processing, E[2]=1 while R[2]=0.
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1, 1})));
  f.flooded.clear();
  // Our own join now finds R < E: flood event immediately, no
  // computation (Fig 4 lines 15-17).
  f.sw->local_join(0, mc::McType::kSymmetric);
  EXPECT_FALSE(f.sw->computing());
  ASSERT_EQ(f.flooded.size(), 1u);
  EXPECT_EQ(f.flooded[0].event, McEventType::kJoin);
  EXPECT_FALSE(f.flooded[0].proposal.has_value());
  EXPECT_TRUE(f.sw->proposal_flag(0));
  // When the missing join from 2 arrives, the gate opens.
  f.sw->receive(f.join_lsa(2, f.stamp({0, 1, 1})));
  EXPECT_TRUE(f.sw->computing());
  f.sched.run();
  EXPECT_FALSE(f.sw->proposal_flag(0));
  EXPECT_EQ(f.flooded.back().event, McEventType::kNone);
  EXPECT_TRUE(f.flooded.back().proposal.has_value());
}

TEST(EventHandler, CpuContentionAcrossMcsDefersSecondProposal) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);   // MC 0: computing
  EXPECT_TRUE(f.sw->computing());
  f.sw->local_join(1, mc::McType::kSymmetric);   // MC 1: CPU busy
  // MC 1's join flooded immediately without a proposal.
  ASSERT_EQ(f.flooded.size(), 1u);
  EXPECT_EQ(f.flooded[0].mc, 1);
  EXPECT_FALSE(f.flooded[0].proposal.has_value());
  EXPECT_TRUE(f.sw->proposal_flag(1));
  f.sched.run();
  // After MC 0's computation, MC 1's gate fires and proposes.
  ASSERT_EQ(f.flooded.size(), 3u);
  EXPECT_EQ(f.flooded[1].mc, 0);
  EXPECT_EQ(f.flooded[2].mc, 1);
  EXPECT_TRUE(f.flooded[2].proposal.has_value());
  EXPECT_EQ(f.sw->counters().computations_started, 2u);
}

TEST(Destruction, LastLeaveDeletesState) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  EXPECT_TRUE(f.sw->has_state(0));
  f.sw->local_leave(0);
  f.sched.run();
  // Leave advertised (with the empty-topology proposal), then state
  // deleted (paper §3.4).
  EXPECT_EQ(f.flooded.back().event, McEventType::kLeave);
  EXPECT_FALSE(f.sw->has_state(0));
}

TEST(Destruction, RemoteLeaveEmptyingMemberListDeletesState) {
  Fixture f(graph::line(4));
  f.sw->receive(f.join_lsa(2, f.stamp({0, 0, 1}), Topology{}));
  EXPECT_TRUE(f.sw->has_state(0));
  McLsa leave;
  leave.source = 2;
  leave.event = McEventType::kLeave;
  leave.mc = 0;
  leave.mc_type = mc::McType::kSymmetric;
  leave.stamp = f.stamp({0, 0, 2});
  leave.proposal = Topology{};
  f.sw->receive(leave);
  EXPECT_FALSE(f.sw->has_state(0));
}

TEST(Destruction, LeaveOfNonMemberIsNoOp) {
  Fixture f(graph::line(4));
  f.sw->local_leave(7);
  EXPECT_FALSE(f.sw->has_state(7));
  EXPECT_TRUE(f.flooded.empty());
}

TEST(LinkEvent, AffectedMcsGetLinkLsasWithNewProposal) {
  Fixture f(graph::ring(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  // Install a topology using edge 0-1 (members {0, 1}).
  f.sw->receive(f.join_lsa(1, f.stamp({1, 1}), Topology({Edge(0, 1)})));
  f.flooded.clear();
  // Link 0-1 dies; the local image learns first, then EventHandler.
  const graph::LinkId dead = f.image.find_link(0, 1);
  f.image.set_link_up(dead, false);
  EXPECT_EQ(f.sw->local_link_event(dead), 1);  // k = 1 affected MC
  f.sched.run();
  ASSERT_EQ(f.flooded.size(), 1u);
  EXPECT_EQ(f.flooded[0].event, McEventType::kLink);
  EXPECT_EQ(f.flooded[0].link, dead);
  ASSERT_TRUE(f.flooded[0].proposal.has_value());
  // New topology routes around the dead link.
  EXPECT_FALSE(f.flooded[0].proposal->contains(Edge(0, 1)));
  EXPECT_TRUE(trees::is_steiner_tree(*f.flooded[0].proposal, {0, 1}));
}

TEST(LinkEvent, UnaffectedMcsStaySilent) {
  Fixture f(graph::ring(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->receive(f.join_lsa(1, f.stamp({1, 1}), Topology({Edge(0, 1)})));
  f.flooded.clear();
  // A link the topology does not use.
  const graph::LinkId unused = f.image.find_link(2, 3);
  f.image.set_link_up(unused, false);
  EXPECT_EQ(f.sw->local_link_event(unused), 0);
  f.sched.run();
  EXPECT_TRUE(f.flooded.empty());
}

TEST(MembershipWatermark, ReorderedJoinLeaveDoesNotResurrectMember) {
  Fixture f(graph::line(4));
  // Switch 2 is a stable member, so the MC survives switch 1's churn.
  f.sw->receive(f.join_lsa(2, f.stamp({0, 0, 1})));
  // Switch 1's leave (its event #2) arrives before its join (event #1).
  McLsa leave;
  leave.source = 1;
  leave.event = McEventType::kLeave;
  leave.mc = 0;
  leave.mc_type = mc::McType::kSymmetric;
  leave.stamp = f.stamp({0, 2, 1});
  f.sw->receive(leave);
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1})));
  // The stale join must not re-add the member.
  ASSERT_TRUE(f.sw->has_state(0));
  EXPECT_FALSE(f.sw->members(0)->contains(1));
  EXPECT_TRUE(f.sw->members(0)->contains(2));
  // R still counted both of switch 1's events.
  EXPECT_EQ((*f.sw->stamp_r(0))[1], 2u);
}

TEST(Counters, FloodingBreakdown) {
  Fixture f(graph::line(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  const DgmcCounters& c = f.sw->counters();
  EXPECT_EQ(c.lsas_flooded, 1u);
  EXPECT_EQ(c.event_lsas_flooded, 1u);
  EXPECT_EQ(c.proposals_flooded, 1u);
  EXPECT_EQ(c.lsas_received, 0u);
}


TEST(ReceiveLsa, WithoutTieBreakEqualStampProposalsSplitTheNetwork) {
  // Deterministic demonstration of the race the tie-break closes: two
  // proposals with identical timestamps but different content arrive in
  // opposite orders at two switches. Under the paper's literal rule
  // (accept any T >= E), each switch keeps the one that arrived last.
  auto make_switch = [](Fixture& f, bool tie_break) {
    DgmcSwitch::Hooks hooks;
    hooks.flood = [&f](const McLsa& lsa) { f.flooded.push_back(lsa); };
    hooks.local_image = [&f]() -> const graph::Graph& { return f.image; };
    DgmcConfig cfg;
    cfg.computation_time = kTc;
    cfg.equal_stamp_tie_break = tie_break;
    return std::make_unique<DgmcSwitch>(0, f.image.node_count(), f.sched,
                                        *f.algorithm, cfg,
                                        std::move(hooks));
  };

  for (bool tie_break : {false, true}) {
    Fixture fa(graph::line(4));
    Fixture fb(graph::line(4));
    fa.sw = make_switch(fa, tie_break);
    fb.sw = make_switch(fb, tie_break);

    // Both switches observe the same two joins...
    for (Fixture* f : {&fa, &fb}) {
      f->sw->receive(f->join_lsa(1, f->stamp({0, 1})));
      f->sw->receive(f->join_lsa(2, f->stamp({0, 1, 1})));
    }
    // ...then two concurrent triggered proposals with the same stamp
    // arrive in opposite orders.
    const Topology p1({Edge(1, 2)});
    const Topology p2({Edge(1, 2), Edge(2, 3)});
    fa.sw->receive(fa.triggered_lsa(1, fa.stamp({0, 1, 1}), p1));
    fa.sw->receive(fa.triggered_lsa(2, fa.stamp({0, 1, 1}), p2));
    fb.sw->receive(fb.triggered_lsa(2, fb.stamp({0, 1, 1}), p2));
    fb.sw->receive(fb.triggered_lsa(1, fb.stamp({0, 1, 1}), p1));

    const bool agree = *fa.sw->installed(0) == *fb.sw->installed(0);
    if (tie_break) {
      EXPECT_TRUE(agree);  // both keep proposer 1's topology
      EXPECT_EQ(*fa.sw->installed(0), p1);
    } else {
      EXPECT_FALSE(agree);  // last writer wins at each switch
      EXPECT_EQ(*fa.sw->installed(0), p2);
      EXPECT_EQ(*fb.sw->installed(0), p1);
    }
  }
}


TEST(RoutingEntries, ReflectInstalledTopology) {
  Fixture f(graph::ring(4));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  // Not on any tree yet (single member): no entries.
  EXPECT_TRUE(f.sw->routing_entries(0, f.image).empty());
  // Install a tree using both of switch 0's incident ring links.
  f.sw->receive(f.join_lsa(1, f.stamp({1, 1}),
                           Topology({Edge(0, 1), Edge(0, 3)})));
  const auto entries = f.sw->routing_entries(0, f.image);
  ASSERT_EQ(entries.size(), 2u);
  for (graph::LinkId id : entries) {
    const graph::Link& l = f.image.link(id);
    EXPECT_TRUE(l.u == 0 || l.v == 0);
  }
  // Unknown MC: empty.
  EXPECT_TRUE(f.sw->routing_entries(9, f.image).empty());
}

TEST(Destruction, TombstonesWhenDestroyOnEmptyDisabled) {
  Fixture f(graph::line(4));
  DgmcSwitch::Hooks hooks;
  hooks.flood = [&f](const McLsa& lsa) { f.flooded.push_back(lsa); };
  hooks.local_image = [&f]() -> const graph::Graph& { return f.image; };
  DgmcConfig cfg;
  cfg.computation_time = kTc;
  cfg.destroy_on_empty = false;
  f.sw = std::make_unique<DgmcSwitch>(0, f.image.node_count(), f.sched,
                                      *f.algorithm, cfg, std::move(hooks));
  f.sw->local_join(0, mc::McType::kSymmetric);
  f.sched.run();
  f.sw->local_leave(0);
  f.sched.run();
  // State is kept as a tombstone for post-run inspection.
  ASSERT_TRUE(f.sw->has_state(0));
  EXPECT_TRUE(f.sw->members(0)->empty());
  EXPECT_EQ((*f.sw->stamp_r(0))[0], 2u);
}

TEST(Counters, ReceiveSideBreakdown) {
  Fixture f(graph::line(4));
  f.sw->receive(f.join_lsa(1, f.stamp({0, 1}), Topology{}));   // accepted
  f.sw->receive(f.join_lsa(2, f.stamp({0, 1, 1})));            // event only
  f.sw->receive(f.triggered_lsa(1, f.stamp({0, 1}), Topology{}));  // stale
  const DgmcCounters& c = f.sw->counters();
  EXPECT_EQ(c.lsas_received, 3u);
  EXPECT_EQ(c.proposals_accepted, 1u);
  EXPECT_EQ(c.proposals_ignored, 1u);
  EXPECT_EQ(c.inconsistencies_detected, 0u);  // we had no local events
}


TEST(ComputationCost, IncrementalUpdatesUseTheShorterDuration) {
  // Tc(full) = 1.0, Tc(incremental) = 0.25: the modeled cost follows
  // the algorithm's reported path (paper §3.5).
  des::Scheduler sched;
  graph::Graph image = graph::line(4);
  auto algorithm = mc::make_incremental_algorithm();
  std::vector<double> flood_times;
  std::vector<McLsa> flooded;
  DgmcSwitch::Hooks hooks;
  hooks.flood = [&](const McLsa& lsa) {
    flooded.push_back(lsa);
    flood_times.push_back(sched.now());
  };
  hooks.local_image = [&image]() -> const graph::Graph& { return image; };
  DgmcConfig cfg;
  cfg.computation_time = 1.0;
  cfg.incremental_computation_time = 0.25;
  DgmcSwitch sw(0, 4, sched, *algorithm, cfg, std::move(hooks));

  auto stamp = [&](std::initializer_list<std::uint32_t> counts) {
    VectorTimestamp t(4);
    int i = 0;
    for (std::uint32_t c : counts) {
      for (std::uint32_t k = 0; k < c; ++k) t.increment(i);
      ++i;
    }
    return t;
  };

  // 1) Own join: single member, a trivially-incremental empty topology
  //    -> short duration.
  sw.local_join(0, mc::McType::kSymmetric);
  sched.run();
  ASSERT_EQ(flood_times.size(), 1u);
  EXPECT_DOUBLE_EQ(flood_times[0], 0.25);

  // 2) Join from 1 that missed our event: the counter-proposal has no
  //    previous tree (installed is empty) -> from scratch, full Tc.
  McLsa join1;
  join1.source = 1;
  join1.event = McEventType::kJoin;
  join1.mc = 0;
  join1.stamp = stamp({0, 1});
  const double t1 = sched.now();
  sw.receive(join1);
  sched.run();
  ASSERT_EQ(flood_times.size(), 2u);
  EXPECT_DOUBLE_EQ(flood_times[1] - t1, 1.0);
  EXPECT_EQ(*sw.installed(0), Topology({Edge(0, 1)}));

  // 3) Join from 2: extending the installed 0-1 tree is incremental ->
  //    short duration again.
  McLsa join2;
  join2.source = 2;
  join2.event = McEventType::kJoin;
  join2.mc = 0;
  join2.stamp = stamp({0, 0, 1});
  const double t2 = sched.now();
  sw.receive(join2);
  sched.run();
  ASSERT_EQ(flood_times.size(), 3u);
  EXPECT_DOUBLE_EQ(flood_times[2] - t2, 0.25);
  EXPECT_TRUE(trees::is_steiner_tree(*sw.installed(0), {0, 1, 2}));
}

}  // namespace
}  // namespace dgmc::core
