// Tests for the chaos soak runner (src/soak): a seeded CI-sized soak
// passes every invariant and budget, results are bit-identical across
// job counts, a gray-failed switch trips the convergence watchdog with
// a replayable trace, and one spec drives both dgmc_soak and
// dgmc_check.
#include "soak/soak.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <variant>

#include "check/executor.hpp"
#include "check/explorer.hpp"
#include "check/invariants.hpp"
#include "check/scenario.hpp"
#include "check/trace.hpp"

namespace dgmc::soak {
namespace {

// A small but adversarial soak: loss + jitter, backpressure enabled, a
// flash crowd, background Poisson churn, drifting link costs, and a
// rolling restart wave — all inside a few simulated seconds so the
// whole suite stays CI-sized.
const char* kCiSpec = R"(name ci-soak
network waxman 14 seed=11
delay uniform 1ms
timing tc=10ms perhop=4us
option algorithm=incremental resync=on dualdetect=off reliable=on
overload inflight=8 queue=128 dedupcap=512
soak duration=12s phases=3 trials=1 seed=42
watchdog deadline=30s
budget dedup=4096 pending=8192 rss_mb=512
fault loss=0.02 jitter=1ms
churn flashcrowd mc=1 start=0.5s members=8 alpha=1.5 scale=20ms
churn poisson mc=2 start=1s members=3 events=5 gap=1.5s
churn drift links=3 period=400ms sigma=0.5 down=1.8 up=1.3
churn rolling start=4s interval=3s downtime=300ms count=2
)";

sim::SoakSpec parse_spec(const std::string& text) {
  auto result = sim::SoakSpec::parse(text);
  const auto* err = std::get_if<sim::SpecError>(&result);
  EXPECT_EQ(err, nullptr) << (err != nullptr
                                  ? "line " + std::to_string(err->line) +
                                        ": " + err->message
                                  : "");
  return std::get<sim::SoakSpec>(result);
}

TEST(SoakRunner, CiSoakPassesInvariantsAndBudgets) {
  const sim::SoakSpec spec = parse_spec(kCiSpec);
  SoakOptions options;
  const TrialResult result = run_trial(spec, 0, options);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_FALSE(result.watchdog_tripped);
  ASSERT_EQ(result.phases.size(), 3u);
  // The churn programs actually produced work...
  EXPECT_GT(result.phases.front().events_injected, 0u);
  EXPECT_GT(result.phases.back().installs, 0u);
  // ...and every phase drained with bounded steady-state tables.
  for (const PhaseReport& p : result.phases) {
    EXPECT_LE(p.dedup_backlog, spec.budgets.dedup_backlog);
    EXPECT_LE(p.pending_retransmits, spec.budgets.pending_retransmits);
    EXPECT_EQ(p.queued, 0u) << "drained phase must have empty tx queues";
  }
  EXPECT_NE(result.final_fingerprint, 0u);
}

TEST(SoakRunner, ResultsAreBitIdenticalAcrossJobCounts) {
  sim::SoakSpec spec = parse_spec(kCiSpec);
  spec.duration = 6.0;
  spec.phases = 2;
  spec.trials = 4;
  SoakOptions options;
  options.track_rss = false;  // RSS is the one host-dependent reading
  options.jobs = 1;
  const auto serial = run_soak(spec, options);
  options.jobs = 8;
  const auto parallel = run_soak(spec, options);
  EXPECT_EQ(canonical_summary(serial), canonical_summary(parallel));
  EXPECT_FALSE(canonical_summary(serial).empty());
}

TEST(SoakRunner, TrialsAreIndependentlySeeded) {
  sim::SoakSpec spec = parse_spec(kCiSpec);
  spec.duration = 4.0;
  spec.phases = 1;
  spec.trials = 2;
  SoakOptions options;
  options.track_rss = false;
  const auto results = run_soak(spec, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].final_fingerprint, results[1].final_fingerprint)
      << "trials must draw from independently forked streams";
}

TEST(SoakRunner, StuckMcTripsWatchdogWithReplayableTrace) {
  sim::SoakSpec spec = parse_spec(kCiSpec);
  spec.duration = 6.0;
  spec.phases = 2;
  spec.watchdog_deadline = 5.0;
  SoakOptions options;
  options.track_rss = false;
  // Gray failure mid-flash-crowd: node 3's transport goes silent while
  // its protocol state stays alive and stale.
  options.stuck_node = 3;
  options.stuck_at = 1.0;
  const TrialResult result = run_trial(spec, 0, options);
  ASSERT_FALSE(result.ok);
  ASSERT_TRUE(result.watchdog_tripped) << result.failure;
  EXPECT_NE(result.failure.find("watchdog"), std::string::npos);
  ASSERT_FALSE(result.trace_text.empty());

  // The dumped trace must be self-contained: load it, resolve the
  // embedded spec with no catalog lookup, and replay it through the
  // checker without divergence.
  const std::string path = ::testing::TempDir() + "soak_watchdog_test.trace";
  {
    std::ofstream out(path);
    out << result.trace_text;
  }
  std::string error;
  const auto trace = check::load_trace(path, &error);
  std::remove(path.c_str());
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_FALSE(trace->spec_text.empty());
  EXPECT_FALSE(trace->choices.empty());
  const auto scenario = check::resolve_spec(*trace, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const check::ReplayResult replayed = check::replay(*scenario, *trace);
  EXPECT_FALSE(replayed.divergence.has_value()) << *replayed.divergence;
  EXPECT_EQ(replayed.steps_executed, trace->choices.size());
}

TEST(SoakRunner, OneSpecDrivesBothSoakAndChecker) {
  // The acceptance demo: the SAME parsed spec object powers a soak
  // trial (dgmc_soak path) and a model-checking walk (dgmc_check
  // --spec path), with the checker's oracles holding along the way.
  sim::SoakSpec spec = parse_spec(kCiSpec);
  spec.duration = 4.0;
  spec.phases = 1;

  SoakOptions options;
  options.track_rss = false;
  EXPECT_TRUE(run_trial(spec, 0, options).ok);

  const check::ScenarioSpec scenario = check::scenario_from_soak(spec, 6);
  EXPECT_EQ(scenario.injections.size(), 6u);
  check::Executor executor(scenario);
  std::size_t steps = 0;
  while (!executor.done() && steps < 300) {
    executor.step(0);
    ++steps;
    auto violation = check::check_step_invariants(executor.network(), scenario);
    EXPECT_FALSE(violation.has_value())
        << violation->oracle << ": " << violation->detail;
  }
  EXPECT_EQ(executor.injections_fired(), 6u);
}

TEST(SoakRunner, BenchJsonAndSummaryCoverFailures) {
  sim::SoakSpec spec = parse_spec(kCiSpec);
  spec.duration = 3.0;
  spec.phases = 1;
  spec.watchdog_deadline = 4.0;
  SoakOptions options;
  options.track_rss = false;
  options.stuck_node = 2;
  options.stuck_at = 0.8;
  const auto results = run_soak(spec, options);
  const std::string summary = canonical_summary(results);
  EXPECT_NE(summary.find("watchdog=1"), std::string::npos);
  EXPECT_NE(summary.find("failure:"), std::string::npos);
  const std::string json = bench_json(spec, results);
  EXPECT_NE(json.find("\"bench\": \"soak\""), std::string::npos);
  EXPECT_NE(json.find("\"watchdog\": true"), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
}

TEST(SoakRunner, RssProbeReturnsPlausibleValue) {
  const double rss = process_rss_mb();
  EXPECT_GT(rss, 0.0);
  EXPECT_LT(rss, 64.0 * 1024.0);  // under 64 GiB, surely
}

}  // namespace
}  // namespace dgmc::soak
