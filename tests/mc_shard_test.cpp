// The sharding + batching determinism suite (DESIGN.md §13).
//
// Three layers share one contract — observable behavior is independent
// of how state is sharded and whether LSA floods are batched:
//
//   * mc::ShardStore: iteration order, handles and deep copies are
//     shard-count-invariant (the container-level guarantee everything
//     above leans on).
//   * core codec: a McLsaBatch round-trips losslessly, a size-1 batch
//     is byte-identical to the plain McLsa frame, and either frame
//     decodes through decode_mc_lsa_batch.
//   * sim::DgmcNetwork / sim::ManyMcEngine: fingerprints and agreed
//     trees are bit-identical across config.mc_shards, exec jobs, and
//     lsa_batching on/off.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "core/mc_lsa.hpp"
#include "graph/generators.hpp"
#include "mc/algorithm.hpp"
#include "mc/shard_store.hpp"
#include "sim/many_mc.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace dgmc {
namespace {

// --- mc::ShardStore -------------------------------------------------

TEST(ShardStore, InsertFindEraseAcrossShards) {
  mc::ShardStore<int> store(4);
  EXPECT_EQ(store.shard_count(), 4);
  EXPECT_TRUE(store.empty());

  bool created = false;
  store.get_or_create(7, &created) = 70;
  EXPECT_TRUE(created);
  store.get_or_create(7, &created) += 7;
  EXPECT_FALSE(created);
  store.get_or_create(11) = 110;

  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.find(7), nullptr);
  EXPECT_EQ(*store.find(7), 77);
  EXPECT_TRUE(store.contains(11));
  EXPECT_EQ(store.find(8), nullptr);

  EXPECT_TRUE(store.erase(7));
  EXPECT_FALSE(store.erase(7));
  EXPECT_FALSE(store.contains(7));
  EXPECT_EQ(store.size(), 1u);

  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.find(11), nullptr);
}

/// Irregular id set (gaps, shard collisions, out-of-order inserts):
/// keys() and for_each visit the identical ascending sequence whether
/// there is one arena or sixteen.
TEST(ShardStore, IterationOrderIsShardCountInvariant) {
  const std::vector<mc::McId> ids = {33, 2, 48, 17, 1, 32, 16, 3, 1000, 255};
  std::vector<std::vector<std::pair<mc::McId, int>>> visits;
  for (const int shards : {1, 4, 16}) {
    mc::ShardStore<int> store(shards);
    for (const mc::McId id : ids) store.get_or_create(id) = static_cast<int>(id) * 3;
    store.erase(16);  // erasure must not disturb the merge either
    std::vector<std::pair<mc::McId, int>> seen;
    store.for_each([&](mc::McId id, int& v) { seen.emplace_back(id, v); });
    EXPECT_EQ(store.keys().size(), seen.size());
    visits.push_back(std::move(seen));
  }
  for (std::size_t i = 1; i < visits.size(); ++i) EXPECT_EQ(visits[0], visits[i]);
  // And the merged order is globally ascending.
  for (std::size_t i = 1; i < visits[0].size(); ++i) {
    EXPECT_LT(visits[0][i - 1].first, visits[0][i].first);
  }
}

TEST(ShardStore, ForEachWhileStopsEarly) {
  mc::ShardStore<int> store(4);
  for (mc::McId id = 0; id < 10; ++id) store.get_or_create(id) = 1;
  int visited = 0;
  store.for_each_while([&](mc::McId id, int&) {
    ++visited;
    return id < 4;  // stop after visiting id 4
  });
  EXPECT_EQ(visited, 5);
}

/// A handle survives unrelated churn in its own shard: later inserts
/// and erases never move an occupied slot.
TEST(ShardStore, HandlesStayValidAcrossUnrelatedChurn) {
  mc::ShardStore<std::vector<int>> store(4);
  store.get_or_create(6) = {6, 6, 6};
  const mc::McHandle h = store.handle_of(6);
  ASSERT_TRUE(h.valid());

  // Grow the same shard far past its initial capacity, then churn.
  for (mc::McId id = 10; id < 410; id += 4) store.get_or_create(id) = {1};
  for (mc::McId id = 10; id < 210; id += 4) store.erase(id);
  for (mc::McId id = 10; id < 110; id += 4) store.get_or_create(id) = {2};

  EXPECT_EQ(store.id_of(h), 6);
  EXPECT_EQ(store.get(h), (std::vector<int>{6, 6, 6}));
  EXPECT_EQ(store.handle_of(6), h);
  EXPECT_FALSE(store.handle_of(999).valid());
}

/// erase() frees the slot to the shard freelist and resets the value
/// immediately; the next same-shard insert reuses the slot with a
/// default-constructed record.
TEST(ShardStore, ErasedSlotIsReusedViaFreelist) {
  mc::ShardStore<std::vector<int>> store(4);
  store.get_or_create(4) = {1, 2, 3};
  const mc::McHandle freed = store.handle_of(4);
  store.erase(4);
  store.get_or_create(8);  // same shard (both ≡ 0 mod 4)
  const mc::McHandle reused = store.handle_of(8);
  EXPECT_EQ(reused, freed);
  EXPECT_TRUE(store.get(reused).empty());
}

TEST(ShardStore, ShardOwnershipAndPerShardIteration) {
  mc::ShardStore<int> store(4);
  for (mc::McId id = 0; id < 23; ++id) store.get_or_create(id) = 0;
  std::size_t total = 0;
  for (int s = 0; s < store.shard_count(); ++s) {
    mc::McId prev = -1;
    std::size_t in_shard = 0;
    store.for_each_in_shard(s, [&](mc::McId id, int&) {
      EXPECT_EQ(store.shard_of(id), s);
      EXPECT_EQ(id % 4, s);
      EXPECT_LT(prev, id);  // ascending within the shard
      prev = id;
      ++in_shard;
    });
    EXPECT_EQ(in_shard, store.shard_size(s));
    total += in_shard;
  }
  EXPECT_EQ(total, store.size());
}

/// Checkpoint snapshot/restore relies on the store being deep-copyable:
/// mutating the original must not leak into a copy.
TEST(ShardStore, DeepCopyIsIndependent) {
  mc::ShardStore<std::vector<int>> store(4);
  for (mc::McId id = 0; id < 12; ++id) store.get_or_create(id) = {static_cast<int>(id)};
  const mc::ShardStore<std::vector<int>> snapshot = store;

  store.erase(3);
  store.get_or_create(100) = {100};
  store.get_or_create(5).push_back(55);

  EXPECT_EQ(snapshot.size(), 12u);
  EXPECT_TRUE(snapshot.contains(3));
  EXPECT_FALSE(snapshot.contains(100));
  ASSERT_NE(snapshot.find(5), nullptr);
  EXPECT_EQ(*snapshot.find(5), (std::vector<int>{5}));
}

TEST(ShardStore, ResolveShardCount) {
  EXPECT_EQ(mc::resolve_shard_count(16), 16);
  EXPECT_EQ(mc::resolve_shard_count(1), 1);
  EXPECT_EQ(mc::resolve_shard_count(0), 1);
  EXPECT_EQ(mc::resolve_shard_count(-3), 1);
}

// --- core codec: the batch frame ------------------------------------

core::McLsa batch_sample_lsa(int i) {
  core::McLsa lsa;
  lsa.source = static_cast<graph::NodeId>(i % 5);
  lsa.event = static_cast<core::McEventType>(i % 4);
  lsa.mc = static_cast<mc::McId>(10 + i);
  lsa.mc_type = i % 2 == 0 ? mc::McType::kSymmetric : mc::McType::kReceiverOnly;
  lsa.join_role = static_cast<mc::MemberRole>(1 + i % 3);  // 0 is invalid
  lsa.link = i % 3 == 0 ? graph::kInvalidLink : static_cast<graph::LinkId>(i);
  core::VectorTimestamp stamp(6);
  for (int j = 0; j <= i; ++j) stamp.increment(static_cast<graph::NodeId>(j % 6));
  lsa.stamp = stamp;
  if (i % 2 == 1) {
    std::vector<graph::Edge> edges = {{0, 1},
                                      {1, static_cast<graph::NodeId>(2 + i)}};
    lsa.proposal = trees::Topology(std::move(edges));
  }
  return lsa;
}

TEST(McLsaBatchCodec, RoundTripPreservesEveryLsa) {
  core::McLsaBatch batch;
  for (int i = 0; i < 5; ++i) batch.lsas.push_back(batch_sample_lsa(i));
  const std::vector<std::uint8_t> bytes = core::encode(batch);
  EXPECT_EQ(bytes.size(), core::encoded_size(batch));
  EXPECT_EQ(core::peek_type(bytes), core::WireType::kMcLsaBatch);
  const auto decoded = core::decode_mc_lsa_batch(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, batch);
}

/// The degenerate single-LSA batch costs nothing: it is emitted as (and
/// therefore indistinguishable from) the plain kMcLsa frame.
TEST(McLsaBatchCodec, SizeOneBatchIsByteIdenticalToPlainFrame) {
  core::McLsaBatch batch;
  batch.lsas.push_back(batch_sample_lsa(3));
  EXPECT_EQ(core::encode(batch), core::encode(batch.lsas[0]));
  EXPECT_EQ(core::encoded_size(batch),
            core::encoded_size(batch.lsas[0]));
}

/// ...and the decoder is symmetric: a plain frame is a batch of one, so
/// a receiver can route everything through decode_mc_lsa_batch.
TEST(McLsaBatchCodec, PlainFrameDecodesAsBatchOfOne) {
  const core::McLsa lsa = batch_sample_lsa(2);
  const auto batch = core::decode_mc_lsa_batch(core::encode(lsa));
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->lsas.size(), 1u);
  EXPECT_EQ(batch->lsas[0], lsa);
}

TEST(McLsaBatchCodec, RejectsWrongVersionAndTrailingJunk) {
  core::McLsaBatch batch;
  for (int i = 0; i < 3; ++i) batch.lsas.push_back(batch_sample_lsa(i));
  const std::vector<std::uint8_t> bytes = core::encode(batch);

  std::vector<std::uint8_t> wrong_version = bytes;
  wrong_version[1] = core::kMcLsaBatchVersion + 1;
  EXPECT_FALSE(core::decode_mc_lsa_batch(wrong_version).has_value());

  std::vector<std::uint8_t> junk = bytes;
  junk.push_back(0);
  EXPECT_FALSE(core::decode_mc_lsa_batch(junk).has_value());

  EXPECT_FALSE(core::decode_mc_lsa_batch({}).has_value());
}

// --- sim::DgmcNetwork across shard counts and batching ---------------

struct SimOutcome {
  std::uint64_t fingerprint = 0;
  bool all_converged = true;
  std::vector<trees::Topology> trees;
  lsr::LsaBatcher::Counters counters;
};

/// Joins 10 MCs of 3 members each, quiesces, fails the link shared by
/// the most agreed trees (the detector's k-LSA round), quiesces, then
/// drains one MC. Fully deterministic for fixed (shards, batching).
SimOutcome run_sim_scenario(int mc_shards, bool batching) {
  util::RngStream topo_rng(21);
  graph::Graph g = graph::random_connected(20, 4.0, topo_rng);

  sim::DgmcNetwork::Params params;
  params.dgmc.mc_shards = mc_shards;
  params.lsa_batching = batching;
  sim::DgmcNetwork net(g, params, mc::make_incremental_algorithm());

  const int kMcs = 10;
  util::RngStream member_rng(5);
  std::vector<std::vector<graph::NodeId>> members;
  for (mc::McId m = 0; m < kMcs; ++m) {
    members.push_back(sim::random_members(net.size(), 3, member_rng));
    for (graph::NodeId node : members.back()) {
      net.join(node, m, m % 2 == 0 ? mc::McType::kSymmetric
                                   : mc::McType::kReceiverOnly);
    }
  }
  net.run_to_quiescence();

  SimOutcome out;
  std::vector<int> link_use(static_cast<std::size_t>(g.link_count()), 0);
  for (mc::McId m = 0; m < kMcs; ++m) {
    if (!net.converged(m)) {
      out.all_converged = false;
      continue;
    }
    const trees::Topology agreed = net.agreed_topology(m);
    for (const graph::Edge& e : agreed.edges()) {
      const graph::LinkId l = g.find_link(e.a, e.b);
      if (l != graph::kInvalidLink) ++link_use[static_cast<std::size_t>(l)];
    }
  }
  graph::LinkId shared = 0;
  for (graph::LinkId l = 1; l < g.link_count(); ++l) {
    if (link_use[static_cast<std::size_t>(l)] >
        link_use[static_cast<std::size_t>(shared)]) {
      shared = l;
    }
  }
  net.fail_link(shared);
  net.run_to_quiescence();

  for (graph::NodeId node : members[1]) net.leave(node, 1);
  net.run_to_quiescence();

  for (mc::McId m = 0; m < kMcs; ++m) {
    if (m == 1) continue;  // drained
    if (!net.converged(m)) {
      out.all_converged = false;
      out.trees.emplace_back();
      continue;
    }
    out.trees.push_back(net.agreed_topology(m));
  }
  out.fingerprint = net.fingerprint();
  out.counters = net.batching_counters();
  return out;
}

/// config.mc_shards is a pure storage-layout knob: the protocol's
/// fingerprint (stamps, members, installed trees, calendar) must be
/// bit-identical at any shard count.
TEST(ShardedSim, FingerprintInvariantAcrossMcShards) {
  const SimOutcome base = run_sim_scenario(1, false);
  EXPECT_TRUE(base.all_converged);
  for (const int shards : {4, 16}) {
    const SimOutcome other = run_sim_scenario(shards, false);
    EXPECT_EQ(other.fingerprint, base.fingerprint) << "shards=" << shards;
    EXPECT_EQ(other.trees, base.trees) << "shards=" << shards;
  }
}

/// Batching coalesces the detector's k-LSA round into fewer wire ops
/// but must not change what the network agrees on.
TEST(BatchedSim, BatchingPreservesAgreedTrees) {
  const SimOutcome plain = run_sim_scenario(1, false);
  const SimOutcome batched = run_sim_scenario(4, true);
  ASSERT_TRUE(plain.all_converged);
  ASSERT_TRUE(batched.all_converged);
  EXPECT_EQ(plain.trees, batched.trees);

  // The shared-link failure produced at least one real multi-LSA batch,
  // and every submitted LSA went out exactly once (as a single or
  // inside a batch).
  EXPECT_GE(batched.counters.batches_flooded, 1u);
  EXPECT_GT(batched.counters.batched_lsas, batched.counters.batches_flooded);
  EXPECT_EQ(batched.counters.singles_flooded + batched.counters.batched_lsas,
            batched.counters.lsas_submitted);
  EXPECT_EQ(plain.counters.batches_flooded, 0u);
  EXPECT_EQ(plain.counters.lsas_submitted, plain.counters.singles_flooded);
}

// --- sim::ManyMcEngine across (shards, jobs) -------------------------

std::vector<std::uint64_t> many_mc_signature(int shards, int jobs) {
  sim::ManyMcParams p;
  p.switches = 32;
  p.mcs = 128;
  p.members_per_mc = 4;
  p.shards = shards;
  p.jobs = jobs;
  p.cores = 16;
  p.seed = 7;
  sim::ManyMcEngine engine(p);
  engine.build_population();
  engine.churn_round();
  engine.churn_round();
  const sim::ManyMcStats& s = engine.stats();
  return {engine.fingerprint(),
          static_cast<std::uint64_t>(engine.mc_count()),
          static_cast<std::uint64_t>(engine.record_bytes()),
          s.membership_events,
          s.link_events,
          s.mc_recomputes,
          s.mc_lsas,
          s.wire_ops_unbatched,
          s.wire_ops_batched,
          s.wire_bytes_unbatched,
          s.wire_bytes_batched,
          s.link_wire_ops_unbatched,
          s.link_wire_ops_batched,
          s.link_wire_bytes_unbatched,
          s.link_wire_bytes_batched};
}

/// The engine's determinism contract: fingerprint AND every stats
/// counter (including the batched wire model) are bit-identical at any
/// (shard count, pool width) combination.
TEST(ManyMcEngine, DeterministicAcrossShardsAndJobs) {
  const std::vector<std::uint64_t> base = many_mc_signature(1, 1);
  for (const int shards : {1, 4, 16}) {
    for (const int jobs : {1, 8}) {
      if (shards == 1 && jobs == 1) continue;
      EXPECT_EQ(many_mc_signature(shards, jobs), base)
          << "shards=" << shards << " jobs=" << jobs;
    }
  }
}

/// The batched wire model must be a genuine saving on link rounds and
/// agree with the unbatched model everywhere else.
TEST(ManyMcEngine, BatchedWireModelSavesOnLinkRounds) {
  sim::ManyMcParams p;
  p.switches = 32;
  p.mcs = 256;
  p.members_per_mc = 4;
  p.shards = 8;
  p.jobs = 2;
  p.cores = 8;  // few cores => many MCs share a core => large k per link
  p.seed = 3;
  sim::ManyMcEngine engine(p);
  engine.build_population();
  for (int r = 0; r < 3; ++r) engine.churn_round();
  const sim::ManyMcStats& s = engine.stats();
  ASSERT_GT(s.link_events, 0u);
  EXPECT_LT(s.link_wire_ops_batched, s.link_wire_ops_unbatched);
  // Membership rounds are single-LSA: both models must charge them
  // identically, so the totals differ by exactly the link-round delta.
  EXPECT_EQ(s.wire_ops_unbatched - s.link_wire_ops_unbatched,
            s.wire_ops_batched - s.link_wire_ops_batched);
  EXPECT_EQ(s.wire_bytes_unbatched - s.link_wire_bytes_unbatched,
            s.wire_bytes_batched - s.link_wire_bytes_batched);
}

}  // namespace
}  // namespace dgmc
