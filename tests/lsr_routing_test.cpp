#include "lsr/routing.hpp"

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lsr/local_image.hpp"
#include "lsr/unicast.hpp"
#include "util/rng.hpp"

namespace dgmc::lsr {
namespace {

TEST(RoutingTable, NextHopsOnLine) {
  const graph::Graph g = graph::line(5);
  const RoutingTable rt = RoutingTable::compute(g, 2);
  EXPECT_EQ(rt.self(), 2);
  EXPECT_EQ(rt.next_hop(0), 1);
  EXPECT_EQ(rt.next_hop(1), 1);
  EXPECT_EQ(rt.next_hop(3), 3);
  EXPECT_EQ(rt.next_hop(4), 3);
  EXPECT_EQ(rt.next_hop(2), graph::kInvalidNode);  // self
  EXPECT_DOUBLE_EQ(rt.distance(4), 2.0);
}

TEST(RoutingTable, UnreachableDestinations) {
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  const RoutingTable rt = RoutingTable::compute(g, 0);
  EXPECT_EQ(rt.next_hop(3), graph::kInvalidNode);
  EXPECT_FALSE(rt.reachable(3));
  EXPECT_TRUE(rt.reachable(1));
}

TEST(RoutingTable, FirstHopLiesOnShortestPath) {
  util::RngStream rng(3);
  const graph::Graph g = graph::random_connected(30, 3.0, rng);
  for (graph::NodeId self : {0, 7, 29}) {
    const RoutingTable rt = RoutingTable::compute(g, self);
    const graph::ShortestPaths sp = graph::dijkstra(g, self);
    for (graph::NodeId dest = 0; dest < 30; ++dest) {
      if (dest == self) continue;
      const graph::NodeId hop = rt.next_hop(dest);
      ASSERT_NE(hop, graph::kInvalidNode);
      const double w = g.link(g.find_link(self, hop)).cost;
      const graph::ShortestPaths from_hop = graph::dijkstra(g, hop);
      EXPECT_NEAR(sp.dist[dest], w + from_hop.dist[dest], 1e-9);
    }
  }
}

TEST(LocalImage, AppliesLinkEvents) {
  const graph::Graph g = graph::ring(4);
  LocalImage img(g);
  const graph::LinkId id = g.find_link(0, 1);
  EXPECT_TRUE(img.graph().link(id).up);
  EXPECT_TRUE(img.reflects(LinkEventAd{id, true}));
  img.apply(LinkEventAd{id, false});
  EXPECT_FALSE(img.graph().link(id).up);
  EXPECT_TRUE(img.reflects(LinkEventAd{id, false}));
  // The physical graph is untouched.
  EXPECT_TRUE(g.link(id).up);
}

TEST(Unicast, DeliversAlongShortestPath) {
  des::Scheduler sched;
  graph::Graph g = graph::line(4);
  g.set_uniform_delay(1.0);
  std::vector<RoutingTable> tables;
  for (graph::NodeId n = 0; n < 4; ++n) {
    tables.push_back(RoutingTable::compute(g, n));
  }
  UnicastNetwork<int> net(
      sched, g, 0.5,
      [&](graph::NodeId n) -> const RoutingTable& { return tables[n]; });
  graph::NodeId delivered_at = graph::kInvalidNode;
  double delivered_time = -1.0;
  net.set_receiver([&](graph::NodeId at, graph::NodeId from, const int& m) {
    delivered_at = at;
    delivered_time = sched.now();
    EXPECT_EQ(from, 0);
    EXPECT_EQ(m, 42);
  });
  net.send(0, 3, 42);
  sched.run();
  EXPECT_EQ(delivered_at, 3);
  EXPECT_DOUBLE_EQ(delivered_time, 3 * 1.5);
  EXPECT_EQ(net.hops_traversed(), 3u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(Unicast, TransitHookSeesEveryHop) {
  des::Scheduler sched;
  const graph::Graph g = graph::line(4);
  std::vector<RoutingTable> tables;
  for (graph::NodeId n = 0; n < 4; ++n) {
    tables.push_back(RoutingTable::compute(g, n));
  }
  UnicastNetwork<int> net(
      sched, g, 0.0,
      [&](graph::NodeId n) -> const RoutingTable& { return tables[n]; });
  std::vector<graph::NodeId> transits;
  net.set_transit_hook(
      [&](graph::NodeId at, const int&) { transits.push_back(at); });
  net.send(0, 3, 1);
  sched.run();
  EXPECT_EQ(transits, (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(Unicast, SelfDeliveryIsImmediate) {
  des::Scheduler sched;
  const graph::Graph g = graph::line(3);
  std::vector<RoutingTable> tables;
  for (graph::NodeId n = 0; n < 3; ++n) {
    tables.push_back(RoutingTable::compute(g, n));
  }
  UnicastNetwork<int> net(
      sched, g, 0.0,
      [&](graph::NodeId n) -> const RoutingTable& { return tables[n]; });
  bool got = false;
  net.set_receiver([&](graph::NodeId at, graph::NodeId, const int&) {
    got = true;
    EXPECT_EQ(at, 1);
  });
  net.send(1, 1, 9);
  EXPECT_TRUE(got);  // no scheduling needed
}

TEST(Unicast, DropsWhenNoRoute) {
  des::Scheduler sched;
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  std::vector<RoutingTable> tables;
  for (graph::NodeId n = 0; n < 4; ++n) {
    tables.push_back(RoutingTable::compute(g, n));
  }
  UnicastNetwork<int> net(
      sched, g, 0.0,
      [&](graph::NodeId n) -> const RoutingTable& { return tables[n]; });
  int deliveries = 0;
  net.set_receiver(
      [&](graph::NodeId, graph::NodeId, const int&) { ++deliveries; });
  net.send(0, 3, 1);
  sched.run();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(Unicast, StaleTablePointingAtDeadLinkDrops) {
  des::Scheduler sched;
  graph::Graph g = graph::line(3);
  // Tables computed before the failure...
  std::vector<RoutingTable> tables;
  for (graph::NodeId n = 0; n < 3; ++n) {
    tables.push_back(RoutingTable::compute(g, n));
  }
  // ...then the link 1-2 dies.
  g.set_link_up(g.find_link(1, 2), false);
  UnicastNetwork<int> net(
      sched, g, 0.0,
      [&](graph::NodeId n) -> const RoutingTable& { return tables[n]; });
  net.send(0, 2, 1);
  sched.run();
  EXPECT_EQ(net.messages_dropped(), 1u);
}

}  // namespace
}  // namespace dgmc::lsr
