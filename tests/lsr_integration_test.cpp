// Integration of the unicast LSR substrate: link LSAs flood, every
// switch's local image converges to the physical truth, and routing
// tables recomputed from the images steer around failures — the
// OSPF-like behavior the D-GMC layer builds upon.
#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lsr/flooding.hpp"
#include "lsr/link_lsa.hpp"
#include "lsr/local_image.hpp"
#include "lsr/routing.hpp"
#include "lsr/unicast.hpp"
#include "util/rng.hpp"

namespace dgmc::lsr {
namespace {

/// A miniature OSPF network: images + tables per switch, rebuilt when
/// link LSAs arrive.
struct UnicastDomain {
  explicit UnicastDomain(const graph::Graph& physical)
      : graph(physical), flooding(sched, graph, 1e-6) {
    for (graph::NodeId n = 0; n < graph.node_count(); ++n) {
      images.emplace_back(graph);
      tables.push_back(RoutingTable::compute(graph, n));
    }
    flooding.set_receiver(
        [this](const FloodingNetwork<LinkEventAd>::Delivery& d) {
          images[d.at].apply(d.payload);
          tables[d.at] = RoutingTable::compute(images[d.at].graph(), d.at);
        });
  }

  void fail_link(graph::LinkId link) {
    graph.set_link_up(link, false);
    const graph::Link& l = graph.link(link);
    for (graph::NodeId end : {l.u, l.v}) {
      images[end].apply(LinkEventAd{link, false});
      tables[end] = RoutingTable::compute(images[end].graph(), end);
      flooding.flood(end, LinkEventAd{link, false});
    }
  }

  des::Scheduler sched;
  graph::Graph graph;
  FloodingNetwork<LinkEventAd> flooding;
  std::vector<LocalImage> images;
  std::vector<RoutingTable> tables;
};

TEST(LsrIntegration, ImagesConvergeToPhysicalTruthAfterFailure) {
  util::RngStream rng(5);
  graph::Graph g = graph::random_connected(20, 3.5, rng);
  g.set_uniform_delay(1e-6);
  UnicastDomain domain(g);

  const graph::LinkId dead = 3;
  domain.fail_link(dead);
  domain.sched.run();

  for (graph::NodeId n = 0; n < 20; ++n) {
    EXPECT_FALSE(domain.images[n].graph().link(dead).up) << n;
  }
}

TEST(LsrIntegration, RoutingTablesSteerAroundDeadLink) {
  graph::Graph g = graph::ring(8);
  g.set_uniform_delay(1e-6);
  UnicastDomain domain(g);

  // Before: 0 reaches 4 in 4 hops either way.
  EXPECT_DOUBLE_EQ(domain.tables[0].distance(4), 4.0);
  domain.fail_link(domain.graph.find_link(1, 2));
  domain.sched.run();
  // After reconvergence: the clockwise path is cut; 0->4 goes the
  // other way (0-7-6-5-4).
  EXPECT_DOUBLE_EQ(domain.tables[0].distance(4), 4.0);
  EXPECT_EQ(domain.tables[0].next_hop(4), 7);
  EXPECT_DOUBLE_EQ(domain.tables[1].distance(2), 7.0);
}

TEST(LsrIntegration, UnicastDeliveryAfterReconvergence) {
  graph::Graph g = graph::ring(6);
  g.set_uniform_delay(1e-6);
  UnicastDomain domain(g);

  UnicastNetwork<int> unicast(
      domain.sched, domain.graph, 0.0,
      [&domain](graph::NodeId n) -> const RoutingTable& {
        return domain.tables[n];
      });
  int delivered = 0;
  unicast.set_receiver(
      [&](graph::NodeId, graph::NodeId, const int&) { ++delivered; });

  domain.fail_link(domain.graph.find_link(0, 1));
  domain.sched.run();  // reconverge first
  unicast.send(0, 1, 42);
  domain.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(unicast.hops_traversed(), 5u);  // the long way around
}

TEST(LsrIntegration, StaleWindowDetoursThenOptimalAfterConvergence) {
  // A packet launched in the stale window wanders: mid-path switches
  // still route toward the dead link until its endpoints bounce the
  // packet back, and per-hop decisions straighten out as LSAs land.
  // After convergence the same destination costs the optimal 3 hops.
  graph::Graph g = graph::ring(6);
  g.set_uniform_delay(1.0);  // slow LSAs: a wide stale window
  UnicastDomain domain(g);
  UnicastNetwork<int> unicast(
      domain.sched, domain.graph, 0.0,
      [&domain](graph::NodeId n) -> const RoutingTable& {
        return domain.tables[n];
      });
  int delivered = 0;
  unicast.set_receiver(
      [&](graph::NodeId, graph::NodeId, const int&) { ++delivered; });

  domain.fail_link(domain.graph.find_link(2, 3));
  unicast.send(0, 3, 1);  // launched before anyone but 2,3 knows
  domain.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(unicast.messages_dropped(), 0u);
  const std::uint64_t detour_hops = unicast.hops_traversed();
  EXPECT_GT(detour_hops, 3u);  // wandered beyond the optimal path

  unicast.send(0, 3, 2);  // converged: straight down the other arc
  domain.sched.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(unicast.hops_traversed() - detour_hops, 3u);
}

}  // namespace
}  // namespace dgmc::lsr
