// Integration tests: full networks of DgmcSwitches over the flooding
// transport, exercising joins, leaves, bursts, link failures, and all
// three MC types end to end.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "des/scheduler.hpp"

#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "sim/params.hpp"

namespace dgmc::sim {
namespace {

constexpr mc::McId kMc = 0;

DgmcNetwork::Params test_params(des::SimTime tc = 10 * des::kMillisecond) {
  DgmcNetwork::Params p;
  p.per_hop_overhead = 4 * des::kMicrosecond;
  p.dgmc.computation_time = tc;
  return p;
}

graph::Graph unit_delay(graph::Graph g) {
  g.set_uniform_delay(1 * des::kMicrosecond);
  return g;
}

TEST(DgmcNetwork, SingleJoinEstablishesMcEverywhere) {
  DgmcNetwork net(unit_delay(graph::ring(6)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(2, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  for (graph::NodeId n = 0; n < 6; ++n) {
    ASSERT_TRUE(net.switch_at(n).has_state(kMc));
    EXPECT_EQ(net.switch_at(n).members(kMc)->all(),
              (std::vector<graph::NodeId>{2}));
    EXPECT_TRUE(net.switch_at(n).installed(kMc)->empty());
  }
  // Exactly one computation and one flooding for the lone event.
  EXPECT_EQ(net.totals().computations, 1u);
  EXPECT_EQ(net.totals().mc_lsa_floodings, 1u);
}

TEST(DgmcNetwork, SequentialJoinsOneComputationEach) {
  DgmcNetwork net(unit_delay(graph::ring(8)), test_params(),
                  mc::make_incremental_algorithm());
  // Paper Experiment 3's claim: well-separated events cost ~1
  // computation and ~1 flooding each.
  const std::vector<graph::NodeId> joiners = {0, 3, 5, 7};
  des::SimTime t = 0.0;
  for (graph::NodeId j : joiners) {
    net.scheduler().schedule_at(t, [&net, j] {
      net.join(j, kMc, mc::McType::kSymmetric);
    });
    t += 1.0;  // far larger than Tf + Tc
  }
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_EQ(net.totals().computations, joiners.size());
  EXPECT_EQ(net.totals().mc_lsa_floodings, joiners.size());
  const trees::Topology agreed = net.agreed_topology(kMc);
  EXPECT_TRUE(trees::is_steiner_tree(agreed, joiners));
}

TEST(DgmcNetwork, ConcurrentConflictingJoinsConverge) {
  // The paper's motivating race: several switches join within a window
  // shorter than Tc; proposals conflict and the timestamp machinery
  // must reconcile them.
  DgmcNetwork net(unit_delay(graph::grid(4, 5)), test_params(),
                  mc::make_incremental_algorithm());
  const std::vector<graph::NodeId> joiners = {0, 7, 13, 19, 10};
  for (std::size_t i = 0; i < joiners.size(); ++i) {
    const graph::NodeId j = joiners[i];
    net.scheduler().schedule_at(i * 0.001 * des::kMillisecond, [&net, j] {
      net.join(j, kMc, mc::McType::kSymmetric);
    });
  }
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  const trees::Topology agreed = net.agreed_topology(kMc);
  EXPECT_TRUE(trees::is_steiner_tree(agreed, joiners));
  // The burst costs more than one computation, but far fewer than the
  // brute-force n-per-event.
  EXPECT_GT(net.totals().computations, joiners.size() - 1);
  EXPECT_LT(net.totals().computations,
            joiners.size() * static_cast<std::uint64_t>(20));
}

TEST(DgmcNetwork, LeaveShrinksTree) {
  DgmcNetwork net(unit_delay(graph::line(7)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(0, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(3, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(6, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  EXPECT_EQ(net.agreed_topology(kMc).edge_count(), 6u);
  net.leave(6, kMc);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_EQ(net.agreed_topology(kMc).edge_count(), 3u);
  EXPECT_EQ(net.switch_at(0).members(kMc)->all(),
            (std::vector<graph::NodeId>{0, 3}));
}

TEST(DgmcNetwork, LastLeaveDestroysEverywhere) {
  DgmcNetwork net(unit_delay(graph::ring(5)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(1, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(4, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.leave(1, kMc);
  net.run_to_quiescence();
  net.leave(4, kMc);
  net.run_to_quiescence();
  for (graph::NodeId n = 0; n < 5; ++n) {
    EXPECT_FALSE(net.switch_at(n).has_state(kMc)) << "switch " << n;
  }
  EXPECT_TRUE(net.converged(kMc));  // vacuously: destroyed everywhere
}

TEST(DgmcNetwork, LinkFailureRepairsTopology) {
  DgmcNetwork net(unit_delay(graph::ring(6)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(0, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(1, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  ASSERT_EQ(net.agreed_topology(kMc), trees::Topology({graph::Edge(0, 1)}));

  const graph::LinkId dead = net.physical().find_link(0, 1);
  const auto before = net.totals();
  const int affected = net.fail_link(dead);
  EXPECT_EQ(affected, 1);  // k = 1 MC LSA for the link event
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  const trees::Topology repaired = net.agreed_topology(kMc);
  EXPECT_FALSE(repaired.contains(graph::Edge(0, 1)));
  EXPECT_TRUE(trees::is_steiner_tree(repaired, {0, 1}));
  // One non-MC LSA was flooded alongside the MC LSAs.
  EXPECT_EQ(net.totals().nonmc_lsa_floodings,
            before.nonmc_lsa_floodings + 1);
}

TEST(DgmcNetwork, LinkFailureNotOnTreeCausesNoMcTraffic) {
  DgmcNetwork net(unit_delay(graph::ring(6)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(0, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(1, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  const auto before = net.totals();
  EXPECT_EQ(net.fail_link(net.physical().find_link(3, 4)), 0);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().computations, before.computations);
  EXPECT_EQ(net.totals().mc_lsa_floodings, before.mc_lsa_floodings);
  // Local images everywhere learned of the failure regardless.
  for (graph::NodeId n = 0; n < 6; ++n) {
    EXPECT_FALSE(net.image_at(n)
                     .graph()
                     .link(net.physical().find_link(3, 4))
                     .up);
  }
}

TEST(DgmcNetwork, LinkRestoreFloodsOnlyUnicastLsa) {
  DgmcNetwork net(unit_delay(graph::ring(6)), test_params(),
                  mc::make_incremental_algorithm());
  const graph::LinkId link = net.physical().find_link(2, 3);
  net.fail_link(link);
  net.run_to_quiescence();
  const auto before = net.totals();
  net.restore_link(link);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().mc_lsa_floodings, before.mc_lsa_floodings);
  EXPECT_EQ(net.totals().nonmc_lsa_floodings,
            before.nonmc_lsa_floodings + 1);
  EXPECT_TRUE(net.image_at(5).graph().link(link).up);
}

TEST(DgmcNetwork, ReceiverOnlyMcConvergesAndHasContactNode) {
  DgmcNetwork net(unit_delay(graph::grid(3, 4)), test_params(),
                  mc::make_incremental_algorithm());
  for (graph::NodeId r : {1, 6, 11}) {
    net.join(r, kMc, mc::McType::kReceiverOnly, mc::MemberRole::kReceiver);
    net.run_to_quiescence();
  }
  EXPECT_TRUE(net.converged(kMc));
  const trees::Topology t = net.agreed_topology(kMc);
  EXPECT_TRUE(trees::is_steiner_tree(t, {1, 6, 11}));
  // Any non-member can find a contact node (first-stage delivery).
  const graph::NodeId contact = mc::contact_node(
      net.physical(), *net.switch_at(0).members(kMc), t, /*source=*/0);
  EXPECT_NE(contact, graph::kInvalidNode);
}

TEST(DgmcNetwork, AsymmetricMcConnectsSendersToReceivers) {
  DgmcNetwork net(unit_delay(graph::grid(3, 4)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(0, kMc, mc::McType::kAsymmetric, mc::MemberRole::kSender);
  net.run_to_quiescence();
  for (graph::NodeId r : {5, 10, 11}) {
    net.join(r, kMc, mc::McType::kAsymmetric, mc::MemberRole::kReceiver);
    net.run_to_quiescence();
  }
  EXPECT_TRUE(net.converged(kMc));
  const trees::Topology t = net.agreed_topology(kMc);
  for (graph::NodeId r : {5, 10, 11}) {
    EXPECT_TRUE(trees::connects(t, {0, r}));
  }
}

TEST(DgmcNetwork, TwoMcsProceedIndependently) {
  DgmcNetwork net(unit_delay(graph::ring(8)), test_params(),
                  mc::make_incremental_algorithm());
  net.join(0, 0, mc::McType::kSymmetric);
  net.join(4, 1, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(2, 0, mc::McType::kSymmetric);
  net.join(6, 1, mc::McType::kSymmetric);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(0));
  EXPECT_TRUE(net.converged(1));
  EXPECT_TRUE(
      trees::is_steiner_tree(net.agreed_topology(0), {0, 2}));
  EXPECT_TRUE(
      trees::is_steiner_tree(net.agreed_topology(1), {4, 6}));
}

TEST(DgmcNetwork, CommunicationDominantRegimeAlsoConverges) {
  // Experiment 2 regime: Tf >> Tc.
  DgmcNetwork::Params p;
  p.per_hop_overhead = 5 * des::kMillisecond;
  p.dgmc.computation_time = 1 * des::kMillisecond;
  graph::Graph g = graph::grid(4, 4);
  g.set_uniform_delay(1 * des::kMillisecond);
  DgmcNetwork net(std::move(g), p, mc::make_incremental_algorithm());
  const std::vector<graph::NodeId> joiners = {0, 5, 10, 15};
  for (std::size_t i = 0; i < joiners.size(); ++i) {
    const graph::NodeId j = joiners[i];
    net.scheduler().schedule_at(static_cast<double>(i) * 0.0001,
                                [&net, j] {
                                  net.join(j, kMc, mc::McType::kSymmetric);
                                });
  }
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_TRUE(trees::is_steiner_tree(net.agreed_topology(kMc), joiners));
}

}  // namespace
}  // namespace dgmc::sim
