#include "util/rng.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace dgmc::util {
namespace {

TEST(RngStream, DeterministicForSameSeed) {
  RngStream a(123);
  RngStream b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(RngStream, DerivedStreamsAreIndependent) {
  RngStream a = RngStream::derive(7, "topology");
  RngStream b = RngStream::derive(7, "workload");
  // Not a statistical test: just require the streams differ.
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngStream, DeriveIsStableAcrossCalls) {
  RngStream a = RngStream::derive(99, "x");
  RngStream b = RngStream::derive(99, "x");
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(RngStream, UniformIntRespectsBounds) {
  RngStream r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  // Degenerate range.
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(RngStream, UniformIntCoversRange) {
  RngStream r(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngStream, Uniform01InRange) {
  RngStream r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngStream, ExponentialIsPositiveWithRoughMean) {
  RngStream r(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(2.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngStream, BernoulliExtremes) {
  RngStream r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(RngStream, IndexWithinBounds) {
  RngStream r(6);
  for (int i = 0; i < 200; ++i) EXPECT_LT(r.index(13), 13u);
}

TEST(RngStream, ShuffleIsPermutation) {
  RngStream r(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(RngStream, ForkIsDeterministic) {
  RngStream parent(42);
  RngStream a = parent.fork(3);
  RngStream b = parent.fork(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
}

TEST(RngStream, ForkIndicesGiveIndependentStreams) {
  RngStream parent(42);
  RngStream a = parent.fork(0);
  RngStream b = parent.fork(1);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngStream, ForkDoesNotPerturbParent) {
  RngStream with_fork(42);
  RngStream without(42);
  (void)with_fork.fork(7);
  (void)with_fork.fork(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(with_fork.uniform_int(0, 1 << 30),
              without.uniform_int(0, 1 << 30));
  }
}

TEST(RngStream, ForkDependsOnlyOnSeedNotPosition) {
  // fork() is a pure function of (seed, index): advancing the parent's
  // engine must not change what its children produce. This is the
  // property the parallel engine's determinism rests on.
  RngStream advanced(42);
  for (int i = 0; i < 100; ++i) (void)advanced.uniform01();
  RngStream fresh(42);
  RngStream a = advanced.fork(5);
  RngStream b = fresh.fork(5);
  EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

TEST(RngStream, ForkOfForkIsStable) {
  RngStream parent(9);
  RngStream c1 = parent.fork(2).fork(4);
  RngStream c2 = parent.fork(2).fork(4);
  EXPECT_EQ(c1.uniform_int(0, 1 << 30), c2.uniform_int(0, 1 << 30));
  // Grandchildren with different lineage differ.
  RngStream other = parent.fork(4).fork(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (c1.uniform_int(0, 1 << 30) != other.uniform_int(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngStream, SeedAccessorReturnsConstructionSeed) {
  EXPECT_EQ(RngStream(123).seed(), 123u);
  EXPECT_EQ(RngStream::derive(7, "x").seed(),
            RngStream::derive(7, "x").seed());
}

TEST(RngStream, ShuffleHandlesSmallInputs) {
  RngStream r(8);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace dgmc::util
