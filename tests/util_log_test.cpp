#include "util/log.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dgmc::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, RuntimeLevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, CompileTimeGateMatchesConfiguredMinLevel) {
  // The tier-1 build compiles with the default gate; each level's
  // compiled-in status must mirror the DGMC_LOG_MIN_LEVEL the binary
  // was built with, and the gate must be monotone in the level.
  EXPECT_EQ(log_level_compiled_in(LogLevel::kTrace),
            static_cast<int>(LogLevel::kTrace) >= DGMC_LOG_MIN_LEVEL);
  EXPECT_EQ(log_level_compiled_in(LogLevel::kWarn),
            static_cast<int>(LogLevel::kWarn) >= DGMC_LOG_MIN_LEVEL);
  bool prev = log_level_compiled_in(LogLevel::kTrace);
  for (LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn}) {
    const bool cur = log_level_compiled_in(l);
    EXPECT_TRUE(cur || !prev) << "gate must be monotone";
    prev = cur;
  }
  static_assert(log_level_compiled_in(LogLevel::kWarn) ||
                    DGMC_LOG_MIN_LEVEL > static_cast<int>(LogLevel::kWarn),
                "warn is the highest regular level");
}

TEST(Log, ArgumentsEvaluatedOnlyWhenCompiledIn) {
  // Arguments of a gated-out statement are never evaluated (the
  // `if constexpr` branch is discarded), yet they remain type-checked,
  // so gating a level out can neither hide a broken call site nor
  // trigger unused-variable warnings under -Werror.
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  DGMC_TRACE("value %d", count());
  if (log_level_compiled_in(LogLevel::kTrace)) {
    // Branch compiled in: the argument is evaluated (runtime gate only
    // suppresses the output inside logf).
    EXPECT_EQ(evaluations, 1);
  } else {
    // Branch discarded: the call — and its argument — never happen.
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(Log, MacrosCompileForAllLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // silence output; only compilation matters
  DGMC_TRACE("trace %s %d", "arg", 1);
  DGMC_DEBUG("debug %s %d", "arg", 2);
  DGMC_INFO("info %s %d", "arg", 3);
  DGMC_WARN("warn %s %d", "arg", 4);
  DGMC_LOG_AT(LogLevel::kInfo, "direct %f", 0.5);
}

TEST(Log, ConcurrentLogfKeepsLinesIntact) {
  // The sink mutex must serialize whole records: with N threads each
  // emitting M lines, stderr holds exactly N*M newline-terminated
  // lines and every line is one of the emitted records, never an
  // interleaving. Also the TSan target for the level/sink globals.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        DGMC_WARN("thread-%d-line-%d-xxxxxxxxxxxxxxxxxxxxxxxx", t, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string out = testing::internal::GetCapturedStderr();

  int intact = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string line = out.substr(pos, nl - pos);
    pos = nl + 1;
    // A well-formed record mentions exactly one thread tag and ends
    // with the fixed padding (a torn line would cut it short).
    std::size_t tags = 0;
    for (std::size_t at = line.find("thread-"); at != std::string::npos;
         at = line.find("thread-", at + 1)) {
      ++tags;
    }
    if (tags == 1 &&
        line.find("xxxxxxxxxxxxxxxxxxxxxxxx") != std::string::npos) {
      ++intact;
    }
  }
  EXPECT_EQ(intact, kThreads * kLines);
  EXPECT_EQ(pos, out.size()) << "trailing partial line";
}

TEST(Log, ConcurrentLevelChangesAreSafe) {
  // set_log_level / log_level race benignly (atomic): no torn reads,
  // every observed value is one that some thread stored.
  LogLevelGuard guard;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          set_log_level(i % 2 == 0 ? LogLevel::kInfo : LogLevel::kOff);
        } else {
          const LogLevel l = log_level();
          EXPECT_TRUE(l == LogLevel::kInfo || l == LogLevel::kOff ||
                      l == LogLevel::kWarn);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace dgmc::util
