#include "util/log.hpp"

#include <gtest/gtest.h>

namespace dgmc::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, RuntimeLevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, CompileTimeGateMatchesConfiguredMinLevel) {
  // The tier-1 build compiles with the default gate; each level's
  // compiled-in status must mirror the DGMC_LOG_MIN_LEVEL the binary
  // was built with, and the gate must be monotone in the level.
  EXPECT_EQ(log_level_compiled_in(LogLevel::kTrace),
            static_cast<int>(LogLevel::kTrace) >= DGMC_LOG_MIN_LEVEL);
  EXPECT_EQ(log_level_compiled_in(LogLevel::kWarn),
            static_cast<int>(LogLevel::kWarn) >= DGMC_LOG_MIN_LEVEL);
  bool prev = log_level_compiled_in(LogLevel::kTrace);
  for (LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn}) {
    const bool cur = log_level_compiled_in(l);
    EXPECT_TRUE(cur || !prev) << "gate must be monotone";
    prev = cur;
  }
  static_assert(log_level_compiled_in(LogLevel::kWarn) ||
                    DGMC_LOG_MIN_LEVEL > static_cast<int>(LogLevel::kWarn),
                "warn is the highest regular level");
}

TEST(Log, ArgumentsEvaluatedOnlyWhenCompiledIn) {
  // Arguments of a gated-out statement are never evaluated (the
  // `if constexpr` branch is discarded), yet they remain type-checked,
  // so gating a level out can neither hide a broken call site nor
  // trigger unused-variable warnings under -Werror.
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  DGMC_TRACE("value %d", count());
  if (log_level_compiled_in(LogLevel::kTrace)) {
    // Branch compiled in: the argument is evaluated (runtime gate only
    // suppresses the output inside logf).
    EXPECT_EQ(evaluations, 1);
  } else {
    // Branch discarded: the call — and its argument — never happen.
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(Log, MacrosCompileForAllLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // silence output; only compilation matters
  DGMC_TRACE("trace %s %d", "arg", 1);
  DGMC_DEBUG("debug %s %d", "arg", 2);
  DGMC_INFO("info %s %d", "arg", 3);
  DGMC_WARN("warn %s %d", "arg", 4);
  DGMC_LOG_AT(LogLevel::kInfo, "direct %f", 0.5);
}

}  // namespace
}  // namespace dgmc::util
