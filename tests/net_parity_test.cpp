// Cross-backend parity: the same spec-driven membership sequence runs
// through the socket backend (real UDP on loopback, wall clock) and the
// DES backend (simulated clock), and both must agree — same installed
// trees, same member lists — because the protocol objects are the same
// code driven through rt::Executor.
//
// This is the in-tree version of `dgmc_nethost --des-compare`, sized to
// the ISSUE acceptance floor (16 switches) and run once per loop
// flavor (per-packet epoll, batched epoll, io_uring — skipped with a
// note where the kernel lacks it): the batching fast path must be
// invisible to the protocol. Beyond the DES comparison, every switch's
// canonical state dump must agree within a run (the consensus
// property) and across flavors byte-for-byte. Two determinism rules
// make wall-clock parity reliable (learned the hard way):
//   1. Protocol time constants (computation_time) scale with time_scale
//      exactly like the event times do, or proposal races resolve
//      differently across backends.
//   2. Inter-event gaps × time_scale stay well above scheduler jitter
//      (several ms), so event ordering survives the wall clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "mc/algorithm.hpp"
#include "net/cluster.hpp"
#include "net/state_dump.hpp"
#include "sim/network.hpp"
#include "sim/spec.hpp"

namespace dgmc::net {
namespace {

using sim::SoakEvent;
using sim::SoakSpec;
using sim::SpecError;

// Embedded so the test binary does not depend on a source-tree path.
// Mirrors specs/net_churn.spec: 16-switch waxman, flash-crowd join
// storm on mc 1, Poisson churn on mc 2, generous inter-event gaps.
constexpr const char* kSpecText = R"(
name net-parity
network waxman 16 seed=11
delay uniform 1ms
timing tc=10ms perhop=4us
option algorithm=incremental resync=on dualdetect=off reliable=on
soak duration=12s phases=1 trials=1 seed=42
churn flashcrowd mc=1 start=0.5s members=10 alpha=1.5 scale=40ms
churn poisson mc=2 start=1s members=3 events=6 gap=1500ms
)";

std::vector<std::pair<int, int>> canonical_edges(const trees::Topology& t) {
  std::vector<std::pair<int, int>> edges;
  for (const graph::Edge& e : t.edges()) {
    edges.emplace_back(std::min(e.a, e.b), std::max(e.a, e.b));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

struct FlavorRun {
  std::vector<std::vector<std::pair<int, int>>> trees;  // per mc
  std::vector<std::vector<graph::NodeId>> members;      // per mc
  std::string dump;  // canonical state dump (identical on all switches)
};

// Runs the spec's churn through the socket backend under `flavor` and
// returns the converged state. Returns nullopt when the flavor is
// unavailable (uring on an old kernel / DGMC_WITH_URING=OFF build).
std::optional<FlavorRun> run_socket_flavor(const SoakSpec& spec,
                                           const graph::Graph& graph,
                                           const std::vector<SoakEvent>& events,
                                           const std::vector<mc::McId>& mcs,
                                           LoopFlavor flavor) {
  const double time_scale = 0.25;
  NetCluster::Config config;
  config.sw.dgmc = spec.network_params().dgmc;
  config.sw.dgmc.computation_time *= time_scale;
  if (config.sw.dgmc.incremental_computation_time > 0.0) {
    config.sw.dgmc.incremental_computation_time *= time_scale;
  }
  config.time_scale = time_scale;
  config.max_wall = 30.0;
  config.loop = flavor;
  const auto algorithm = mc::make_incremental_algorithm();
  NetCluster cluster(graph, *algorithm, config);
  if (cluster.loop().flavor() != flavor) return std::nullopt;  // fell back

  const NetCluster::RunResult r = cluster.run(events, mcs);
  EXPECT_TRUE(r.converged)
      << flavor_name(flavor) << " loopback run did not converge";
  EXPECT_EQ(r.events_applied, events.size());
  EXPECT_EQ(r.tx_dropped, 0u) << flavor_name(flavor) << " dropped frames";

  FlavorRun out;
  for (mc::McId mcid : mcs) {
    out.trees.push_back(canonical_edges(cluster.agreed_topology(mcid)));
    std::vector<graph::NodeId> members;
    for (int n = 0; n < cluster.size(); ++n) {
      if (cluster.at(n).dgmc().has_state(mcid)) {
        members = cluster.at(n).dgmc().members(mcid)->all();
        break;
      }
    }
    out.members.push_back(std::move(members));
  }
  // The consensus property netd relies on: every switch dumps the
  // same canonical state.
  out.dump = dump_state(cluster.at(0).dgmc());
  for (int n = 1; n < cluster.size(); ++n) {
    EXPECT_EQ(out.dump, dump_state(cluster.at(n).dgmc()))
        << flavor_name(flavor) << ": switch " << n
        << " disagrees with switch 0";
  }
  return out;
}

TEST(NetParity, AllLoopFlavorsMatchDesOnSpecChurn) {
  const auto parsed = SoakSpec::parse(kSpecText);
  const auto* err = std::get_if<SpecError>(&parsed);
  ASSERT_EQ(err, nullptr) << (err ? err->message : "");
  const SoakSpec& spec = std::get<SoakSpec>(parsed);
  const graph::Graph graph = spec.build_graph();
  ASSERT_GE(graph.node_count(), 16);
  const std::vector<mc::McId> mcs = spec.mcs();
  ASSERT_EQ(mcs.size(), 2u);

  std::vector<SoakEvent> events;
  for (SoakEvent& ev :
       sim::ChurnEngine::expand_all(spec, graph, spec.soak_seed)) {
    if (ev.kind == SoakEvent::Kind::kJoin ||
        ev.kind == SoakEvent::Kind::kLeave) {
      events.push_back(ev);
    }
  }
  ASSERT_GT(events.size(), 10u);

  // --- DES backend (simulated clock, uncompressed): the reference ---
  sim::DgmcNetwork des(graph, spec.network_params(),
                       mc::make_incremental_algorithm());
  for (const SoakEvent& ev : events) {
    if (ev.kind == SoakEvent::Kind::kJoin) {
      des.scheduler().schedule_at(ev.at, [&des, ev] {
        des.join(ev.node, ev.mcid, ev.type, ev.role);
      });
    } else {
      des.scheduler().schedule_at(ev.at,
                                  [&des, ev] { des.leave(ev.node, ev.mcid); });
    }
  }
  des.run_to_quiescence();
  std::vector<std::vector<std::pair<int, int>>> des_trees;
  std::vector<std::vector<graph::NodeId>> des_members;
  for (mc::McId mcid : mcs) {
    ASSERT_TRUE(des.converged(mcid)) << "DES not converged for mc " << mcid;
    des_trees.push_back(canonical_edges(des.agreed_topology(mcid)));
    std::vector<graph::NodeId> members;
    for (int n = 0; n < des.size(); ++n) {
      if (des.switch_at(n).has_state(mcid)) {
        members = des.switch_at(n).members(mcid)->all();
        break;
      }
    }
    des_members.push_back(std::move(members));
  }

  // --- Socket backend, once per loop flavor ---
  std::optional<std::string> reference_dump;
  for (LoopFlavor flavor : {LoopFlavor::kEpollPacket, LoopFlavor::kEpoll,
                            LoopFlavor::kUring}) {
    SCOPED_TRACE(flavor_name(flavor));
    const std::optional<FlavorRun> run =
        run_socket_flavor(spec, graph, events, mcs, flavor);
    if (!run.has_value()) {
      ASSERT_EQ(flavor, LoopFlavor::kUring)
          << "only uring may be unavailable";
      std::printf("note: io_uring unavailable, flavor skipped\n");
      continue;
    }
    for (std::size_t m = 0; m < mcs.size(); ++m) {
      EXPECT_EQ(des_trees[m], run->trees[m])
          << "installed trees differ from DES for mc " << mcs[m];
      EXPECT_EQ(des_members[m], run->members[m])
          << "member lists differ from DES for mc " << mcs[m];
    }
    // Canonical dumps must agree across flavors byte-for-byte.
    if (!reference_dump.has_value()) {
      reference_dump = run->dump;
    } else {
      EXPECT_EQ(*reference_dump, run->dump)
          << "canonical dump differs between loop flavors";
    }
  }
  ASSERT_TRUE(reference_dump.has_value());
}

}  // namespace
}  // namespace dgmc::net
