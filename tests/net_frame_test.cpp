// Deterministic unit tests for the datagram framing. The adversarial
// mutation coverage lives in core_codec_fuzz_test (FrameFuzz suite);
// these pin the happy-path layout and the specific rejection rules the
// fuzzer can only hit probabilistically.
#include <gtest/gtest.h>

#include <vector>

#include "core/codec.hpp"
#include "net/frame.hpp"

namespace dgmc::net {
namespace {

Frame sample_hello() {
  Frame f;
  f.kind = FrameKind::kHello;
  f.sender = 3;
  f.link = 7;
  f.hello_seq = 41;
  f.echo_seq = 40;
  f.echo_hold = 0.012345;
  return f;
}

TEST(NetFrame, HelloRoundTrips) {
  const Frame f = sample_hello();
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  const std::optional<Frame> d = decode_frame(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FrameKind::kHello);
  EXPECT_EQ(d->sender, 3);
  EXPECT_EQ(d->link, 7);
  EXPECT_EQ(d->hello_seq, 41u);
  EXPECT_EQ(d->echo_seq, 40u);
  // Hold time travels as integer microseconds.
  EXPECT_NEAR(d->echo_hold, 0.012345, 1e-6);
}

TEST(NetFrame, AckRoundTrips) {
  Frame f;
  f.kind = FrameKind::kAck;
  f.sender = 1;
  f.link = 2;
  f.origin = 9;
  f.seq = 77;
  const std::optional<Frame> d = decode_frame(encode_frame(f));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FrameKind::kAck);
  EXPECT_EQ(d->origin, 9);
  EXPECT_EQ(d->seq, 77u);
}

TEST(NetFrame, DataCarriesCodecPayloadVerbatim) {
  lsr::LinkEventAd ad;
  ad.link = 5;
  ad.up = false;
  Frame f;
  f.kind = FrameKind::kData;
  f.sender = 0;
  f.link = 5;
  f.origin = 0;
  f.seq = 12;
  f.payload = core::encode(ad);
  const std::optional<Frame> d = decode_frame(encode_frame(f));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, f.payload);
  const std::optional<lsr::LinkEventAd> inner =
      core::decode_link_event(d->payload);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->link, 5);
  EXPECT_FALSE(inner->up);
}

TEST(NetFrame, RejectsBadMagicVersionAndKind) {
  std::vector<std::uint8_t> bytes = encode_frame(sample_hello());
  {
    std::vector<std::uint8_t> b = bytes;
    b[0] ^= 0xff;  // magic
    EXPECT_FALSE(decode_frame(b).has_value());
  }
  {
    std::vector<std::uint8_t> b = bytes;
    b[4] = kFrameVersion + 1;
    EXPECT_FALSE(decode_frame(b).has_value());
  }
  {
    std::vector<std::uint8_t> b = bytes;
    b[5] = 0;  // kind below range
    EXPECT_FALSE(decode_frame(b).has_value());
    b[5] = 4;  // kind above range
    EXPECT_FALSE(decode_frame(b).has_value());
  }
}

TEST(NetFrame, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_hello());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_frame(bytes.data(), len).has_value())
        << "prefix of length " << len << " decoded";
  }
}

TEST(NetFrame, RejectsOversizedDatagram) {
  std::vector<std::uint8_t> bytes = encode_frame(sample_hello());
  bytes.resize(kMaxDatagram + 1, 0);
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(NetFrame, RejectsDataLengthMismatch) {
  Frame f;
  f.kind = FrameKind::kData;
  f.sender = 0;
  f.link = 0;
  f.origin = 0;
  f.seq = 1;
  f.payload = {0xaa, 0xbb, 0xcc};
  std::vector<std::uint8_t> bytes = encode_frame(f);
  ASSERT_TRUE(decode_frame(bytes).has_value());
  bytes.push_back(0x00);  // trailing byte the length field disowns
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(NetFrame, RejectsNegativeIds) {
  Frame f = sample_hello();
  f.sender = graph::kInvalidNode;
  EXPECT_FALSE(decode_frame(encode_frame(f)).has_value());
  f = sample_hello();
  f.link = graph::kInvalidLink;
  EXPECT_FALSE(decode_frame(encode_frame(f)).has_value());
}

TEST(NetFrame, EncodeIntoReusesBuffer) {
  std::vector<std::uint8_t> buf;
  encode_frame(sample_hello(), buf);
  const std::size_t first = buf.size();
  encode_frame(sample_hello(), buf);
  EXPECT_EQ(buf.size(), first);  // cleared, not appended
  EXPECT_TRUE(decode_frame(buf).has_value());
}

}  // namespace
}  // namespace dgmc::net
