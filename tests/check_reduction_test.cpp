// Partial-order + symmetry reduction suite (DESIGN.md §12). The claims
// under test, in increasing order of strength:
//
//   1. The static independence relation: conservative, symmetric, and
//      the commutation audit — which re-executes every
//      independent-classified pair in both orders — confirms it on real
//      executor states, both directly and across whole explorations.
//   2. Symmetry machinery: automorphism groups of the generator graphs
//      have the textbook sizes, scenario scripts break symmetry down to
//      exactly the documented subgroup, and canonical fingerprints
//      identify relabeling-equivalent states that plain fingerprints
//      distinguish.
//   3. The reduction contract: over both scenario catalogs, a reduced
//      search reports the same violation set as an unreduced search at
//      every checkpoint interval in {0, 1, 16} and job count in
//      {1, 8}; within reduced mode the full determinism contract
//      (equivalent_results) still holds. The deliberately seeded
//      protocol bugs stay reachable under reduction.
//   4. Effectiveness: on the symmetric star6-crash scenario, reduction
//      shrinks the explored state count by at least 3x (measured ~7x).
//   5. Backward fault-directed search: fault stripping, and the
//      smallest-schedule-first enumeration rediscovering an empty
//      schedule for a churn-only violation.
#include "check/reduction.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "check/backward.hpp"
#include "check/explorer.hpp"
#include "graph/generators.hpp"
#include "graph/permutation.hpp"

namespace dgmc::check {
namespace {

ScenarioSpec spec(const char* name) {
  const ScenarioSpec* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

/// Both catalogs: the 7 primary scenarios plus the symmetric
/// companions, so the equivalence sweep covers faults, crashes and
/// non-trivial automorphism groups.
std::vector<const char*> full_catalog() {
  std::vector<const char*> names;
  for (const ScenarioSpec& s : scenarios()) names.push_back(s.name.c_str());
  EXPECT_EQ(names.size(), 7u);
  for (const ScenarioSpec& s : symmetric_scenarios()) {
    names.push_back(s.name.c_str());
  }
  EXPECT_EQ(names.size(), 9u);
  return names;
}

SearchLimits limits_with(std::size_t interval, std::size_t depth = 8,
                         bool reduce = false) {
  SearchLimits limits;
  limits.max_depth = depth;
  limits.checkpoint_interval = interval;
  limits.reduce = reduce;
  return limits;
}

ActionSig event_sig(des::EventTag::Kind kind, std::int32_t node,
                    std::int32_t peer = -1, std::uint32_t seq = 0,
                    std::int32_t link = -1) {
  ActionSig s;
  s.is_injection = false;
  s.tag.kind = kind;
  s.tag.node = node;
  s.tag.peer = peer;
  s.tag.seq = seq;
  s.tag.link = link;
  return s;
}

ActionSig injection_sig(std::uint32_t index) {
  ActionSig s;
  s.is_injection = true;
  s.injection = index;
  return s;
}

using Kind = des::EventTag::Kind;

// --- 1. Independence relation ---------------------------------------

TEST(Independence, InjectionsDependOnEverything) {
  const ActionSig inj = injection_sig(0);
  EXPECT_FALSE(independent(inj, injection_sig(1)));
  EXPECT_FALSE(independent(inj, event_sig(Kind::kCompute, 3)));
  EXPECT_FALSE(independent(event_sig(Kind::kDelivery, 1, 2), inj));
}

TEST(Independence, SameSwitchEventsDepend) {
  EXPECT_FALSE(independent(event_sig(Kind::kCompute, 1),
                           event_sig(Kind::kDelivery, 1, 0)));
  EXPECT_FALSE(independent(event_sig(Kind::kAck, 2),
                           event_sig(Kind::kRetransmit, 2, 0)));
}

TEST(Independence, DistantProtocolEventsCommute) {
  // Computations at different switches never interact.
  EXPECT_TRUE(independent(event_sig(Kind::kCompute, 0),
                          event_sig(Kind::kCompute, 3)));
  // Deliveries at different switches from unrelated origins commute.
  EXPECT_TRUE(independent(event_sig(Kind::kDelivery, 0, /*peer=*/2),
                          event_sig(Kind::kDelivery, 1, /*peer=*/3)));
}

TEST(Independence, DeliveryDependsOnEventsAtItsOrigin) {
  // A delivery's origin switch can forward another (lower-seq) copy to
  // the same receiver, retracting the pending delivery under the
  // min-seq FIFO rule — events at the origin are therefore dependent.
  const ActionSig deliver_from_2 = event_sig(Kind::kDelivery, 0, /*peer=*/2);
  EXPECT_FALSE(independent(deliver_from_2, event_sig(Kind::kCompute, 2)));
  EXPECT_FALSE(independent(deliver_from_2, event_sig(Kind::kDelivery, 2, 3)));
  EXPECT_FALSE(
      independent(deliver_from_2, event_sig(Kind::kRetransmit, 2, 0)));
}

TEST(Independence, UntaggedFaultAndHeartbeatEventsDepend) {
  // Only the four protocol kinds are classified; everything else is
  // conservatively dependent on everything.
  EXPECT_FALSE(independent(event_sig(Kind::kFault, 0),
                           event_sig(Kind::kCompute, 3)));
  EXPECT_FALSE(independent(event_sig(Kind::kOpaque, 0),
                           event_sig(Kind::kOpaque, 3)));
  EXPECT_FALSE(independent(event_sig(Kind::kHeartbeat, 0),
                           event_sig(Kind::kHeartbeat, 3)));
}

TEST(Independence, RelationIsSymmetric) {
  const std::vector<ActionSig> pool = {
      injection_sig(0),
      event_sig(Kind::kCompute, 0),
      event_sig(Kind::kCompute, 2),
      event_sig(Kind::kDelivery, 0, 2),
      event_sig(Kind::kDelivery, 2, 0),
      event_sig(Kind::kDelivery, 1, 3, /*seq=*/4),
      event_sig(Kind::kRetransmit, 3, 1),
      event_sig(Kind::kAck, 1, 0),
      event_sig(Kind::kFault, 2),
  };
  for (const ActionSig& a : pool) {
    for (const ActionSig& b : pool) {
      EXPECT_EQ(independent(a, b), independent(b, a));
    }
  }
}

TEST(SleepSets, ContainsAndSubsetOnSortedVectors) {
  std::vector<ActionSig> s = {event_sig(Kind::kCompute, 0),
                              event_sig(Kind::kCompute, 2),
                              event_sig(Kind::kDelivery, 1, 3)};
  std::sort(s.begin(), s.end());
  EXPECT_TRUE(sleep_contains(s, event_sig(Kind::kCompute, 2)));
  EXPECT_FALSE(sleep_contains(s, event_sig(Kind::kCompute, 1)));
  std::vector<ActionSig> sub = {s[0], s[2]};
  std::sort(sub.begin(), sub.end());
  EXPECT_TRUE(sleep_subset(sub, s));
  EXPECT_FALSE(sleep_subset(s, sub));
  EXPECT_TRUE(sleep_subset({}, sub));
}

// --- 2. Commutation audit -------------------------------------------

TEST(CommutationAudit, IndependentPairsCommuteAndRestoreEntryState) {
  Executor exec(spec("triangle-2join"));
  // Drive along the native schedule until several events are in flight.
  for (int i = 0; i < 8 && !exec.done(); ++i) exec.step(0);
  ASSERT_FALSE(exec.done());
  const std::uint64_t before = exec.fingerprint();
  std::vector<ActionSig> sigs;
  for (const Executor::Action& a : exec.enabled()) {
    sigs.push_back(action_sig(a));
  }
  std::size_t audited = 0;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    for (std::size_t j = i + 1; j < sigs.size(); ++j) {
      if (!independent(sigs[i], sigs[j])) continue;
      EXPECT_TRUE(audit_commutation(exec, i, j)) << i << " vs " << j;
      ++audited;
    }
  }
  // The audit must leave the executor exactly where it found it.
  EXPECT_EQ(exec.fingerprint(), before);
  EXPECT_GT(audited, 0u);
}

TEST(CommutationAudit, ExplorationWideAuditPasses) {
  // audit_commutation re-executes every independent-classified enabled
  // pair in both orders before every expansion and DGMC_ASSERTs on any
  // disagreement — surviving a whole bounded exploration is an
  // empirical proof of the independence relation on that state space.
  for (const char* name : {"triangle-2join", "ring6-crash"}) {
    SearchLimits limits = limits_with(/*interval=*/1, /*depth=*/8,
                                      /*reduce=*/true);
    limits.audit_commutation = true;
    SearchResult r = explore_dfs(spec(name), limits);
    EXPECT_FALSE(r.violation.has_value()) << name;
    EXPECT_GT(r.stats.transitions, 0u) << name;
  }
}

// --- 3. Symmetry groups and canonical fingerprints ------------------

TEST(Symmetry, GeneratorGraphAutomorphismCounts) {
  // Ring: rotations + reflections (dihedral group, 2n). Star: hub is
  // fixed, leaves permute freely ((n-1)!). Clique: full symmetric
  // group (n!).
  EXPECT_EQ(graph_automorphisms(graph::ring(6)).size(), 12u);
  EXPECT_EQ(graph_automorphisms(graph::star(6)).size(), 120u);
  EXPECT_EQ(graph_automorphisms(graph::complete(4)).size(), 24u);
  EXPECT_TRUE(graph_automorphisms(graph::ring(6)).front().is_identity());
}

TEST(Symmetry, ScenarioScriptsBreakSymmetryToDocumentedSubgroup) {
  // ring6-crash scripts joins at 0 and 3 and a crash at 3: of the 12
  // ring automorphisms only the identity and the 0/3-axis mirror
  // survive. star6-crash touches the hub and leaf 1, leaving leaves
  // 2-5 interchangeable: 4! = 24.
  EXPECT_EQ(scenario_symmetries(spec("ring6-crash")).size(), 2u);
  EXPECT_EQ(scenario_symmetries(spec("star6-crash")).size(), 24u);
  // The triangle scripts pin two of three switches; nothing survives.
  EXPECT_EQ(scenario_symmetries(spec("triangle-2join")).size(), 1u);
  for (const char* name : full_catalog()) {
    std::vector<graph::Permutation> syms = scenario_symmetries(spec(name));
    ASSERT_FALSE(syms.empty()) << name;
    EXPECT_TRUE(syms.front().is_identity()) << name;
  }
}

TEST(Symmetry, CanonicalFingerprintFoldsRelabeledStates) {
  // Drive star6-crash along the native schedule until two deliveries
  // to interchangeable leaves are simultaneously enabled, then take
  // each in turn from a snapshot: the plain fingerprints must differ
  // (different switch received the LSA) while the canonical
  // fingerprints agree (the states are relabelings of each other).
  const ScenarioSpec sc = spec("star6-crash");
  const std::vector<graph::Permutation> syms = scenario_symmetries(sc);
  ASSERT_EQ(syms.size(), 24u);
  Executor exec(sc);
  Executor::Snapshot snap;
  for (int step = 0; step < 64 && !exec.done(); ++step) {
    const std::vector<Executor::Action>& acts = exec.enabled();
    int first = -1, second = -1;
    for (std::size_t i = 0; i < acts.size(); ++i) {
      const des::EventTag& t = acts[i].tag;
      if (acts[i].kind != Executor::Action::Kind::kEvent) continue;
      if (t.kind != des::EventTag::Kind::kDelivery) continue;
      if (t.node < 2) continue;  // hub and leaf 1 are symmetry-pinned
      for (std::size_t j = i + 1; j < acts.size(); ++j) {
        const des::EventTag& u = acts[j].tag;
        if (acts[j].kind != Executor::Action::Kind::kEvent) continue;
        if (u.kind != des::EventTag::Kind::kDelivery || u.node < 2) continue;
        if (u.node != t.node && u.peer == t.peer && u.seq == t.seq) {
          first = static_cast<int>(i);
          second = static_cast<int>(j);
          break;
        }
      }
      if (first >= 0) break;
    }
    if (first >= 0) {
      exec.save(snap);
      exec.step(static_cast<std::size_t>(first));
      const std::uint64_t plain_a = exec.fingerprint();
      const std::uint64_t canon_a = exec.canonical_fingerprint(syms);
      exec.restore(snap);
      exec.step(static_cast<std::size_t>(second));
      const std::uint64_t plain_b = exec.fingerprint();
      const std::uint64_t canon_b = exec.canonical_fingerprint(syms);
      EXPECT_NE(plain_a, plain_b);
      EXPECT_EQ(canon_a, canon_b);
      return;
    }
    exec.step(0);
  }
  FAIL() << "no pair of symmetric deliveries became enabled";
}

// --- 4. The reduction contract --------------------------------------

TEST(ReductionContract, ViolationSetsMatchAcrossCatalog) {
  for (const char* name : full_catalog()) {
    const ScenarioSpec sc = spec(name);
    const SearchResult plain = explore_dfs(sc, limits_with(1));

    // Reduced runs at intervals {0, 1, 16}: same violation set as the
    // unreduced baseline, and bit-identical to each other (the
    // checkpoint-interval invariance carries over to reduced mode).
    const SearchResult reduced1 =
        explore_dfs(sc, limits_with(1, 8, /*reduce=*/true));
    EXPECT_TRUE(equivalent_violation_sets(plain, reduced1)) << name;
    for (std::size_t interval : {std::size_t{0}, std::size_t{16}}) {
      const SearchResult r =
          explore_dfs(sc, limits_with(interval, 8, /*reduce=*/true));
      EXPECT_TRUE(equivalent_results(reduced1, r)) << name << " @" << interval;
    }

    // Parallel frontier engine, jobs {1, 8}: same violation set, and
    // bit-identical (transitions included) across job counts.
    const SearchResult par1 =
        explore_dfs_parallel(sc, limits_with(1, 8, /*reduce=*/true), 1);
    const SearchResult par8 =
        explore_dfs_parallel(sc, limits_with(1, 8, /*reduce=*/true), 8);
    EXPECT_TRUE(equivalent_results(par1, par8, /*compare_transitions=*/true))
        << name;
    EXPECT_TRUE(equivalent_violation_sets(plain, par1)) << name;
  }
}

TEST(ReductionContract, SeededDestroyBugFoundUnderReduction) {
  ScenarioSpec sc = spec("triangle-join-leave");
  sc.params.dgmc.premature_destroy_on_empty = true;
  const SearchLimits plain = limits_with(1, /*depth=*/30);
  const SearchResult unreduced = explore_dfs(sc, plain);
  ASSERT_TRUE(unreduced.violation.has_value());
  EXPECT_EQ(unreduced.violation->oracle, "agreement");
  const SearchResult reduced =
      explore_dfs(sc, limits_with(1, 30, /*reduce=*/true));
  ASSERT_TRUE(reduced.violation.has_value());
  EXPECT_TRUE(equivalent_violation_sets(unreduced, reduced));
  const SearchResult par =
      explore_dfs_parallel(sc, limits_with(1, 30, /*reduce=*/true), 8);
  EXPECT_TRUE(equivalent_violation_sets(unreduced, par));
}

TEST(ReductionContract, SeededSyncBugFoundUnderReduction) {
  ScenarioSpec sc = spec("diamond-crash-recover");
  sc.params.dgmc.unguarded_sync = true;
  const SearchResult unreduced = explore_dfs(sc, limits_with(1, /*depth=*/20));
  ASSERT_TRUE(unreduced.violation.has_value());
  EXPECT_EQ(unreduced.violation->oracle, "heard-within-known");
  const SearchResult reduced =
      explore_dfs(sc, limits_with(1, 20, /*reduce=*/true));
  ASSERT_TRUE(reduced.violation.has_value());
  EXPECT_TRUE(equivalent_violation_sets(unreduced, reduced));
}

// --- 5. Effectiveness -----------------------------------------------

TEST(ReductionEffectiveness, StarScenarioShrinksStatesAtLeastThreeX) {
  // The acceptance bar: on the symmetric 6-switch fault scenario the
  // reduced search must visit at least 3x fewer states (canonical
  // fingerprints fold the 24 leaf relabelings; sleep sets prune the
  // commuting interleavings). Measured ~7x at this depth.
  const ScenarioSpec sc = spec("star6-crash");
  const SearchLimits plain = limits_with(1, /*depth=*/10);
  const SearchResult unreduced = explore_dfs(sc, plain);
  const SearchResult reduced =
      explore_dfs(sc, limits_with(1, 10, /*reduce=*/true));
  ASSERT_FALSE(unreduced.violation.has_value());
  ASSERT_FALSE(reduced.violation.has_value());
  EXPECT_GT(reduced.stats.sleep_pruned, 0u);
  EXPECT_GE(unreduced.stats.states_seen, 3 * reduced.stats.states_seen)
      << unreduced.stats.states_seen << " vs " << reduced.stats.states_seen;
}

// --- 6. Backward fault-directed search ------------------------------

TEST(BackwardSearch, StripFaultsRemovesInjectionsAndPlan) {
  const ScenarioSpec ring = spec("ring6-crash");
  ASSERT_EQ(ring.injections.size(), 4u);  // 2 joins + crash + restart
  const ScenarioSpec stripped = strip_faults(ring);
  EXPECT_EQ(stripped.injections.size(), 2u);
  for (const Injection& inj : stripped.injections) {
    EXPECT_EQ(inj.kind, Injection::Kind::kJoin);
  }
  const ScenarioSpec star = spec("star6-crash");
  ASSERT_FALSE(star.faults.crashes.empty());
  const ScenarioSpec star_stripped = strip_faults(star);
  EXPECT_TRUE(star_stripped.faults.crashes.empty());
  EXPECT_TRUE(star_stripped.faults.flaps.empty());
}

TEST(BackwardSearch, ChurnOnlyViolationNeedsNoFaultSchedule) {
  // The premature-destroy bug fires under pure churn, so the
  // smallest-schedule-first enumeration must succeed on its very first
  // candidate: the empty schedule.
  ScenarioSpec sc = spec("triangle-join-leave");
  sc.params.dgmc.premature_destroy_on_empty = true;
  const SearchLimits limits = limits_with(1, /*depth=*/30);
  const SearchResult witness = explore_dfs(sc, limits);
  ASSERT_TRUE(witness.violation.has_value());
  const BackwardResult back = backward_search(sc, *witness.violation, limits);
  ASSERT_TRUE(back.found);
  EXPECT_EQ(back.candidates_tried, 1u);
  EXPECT_TRUE(back.schedule.crashes.empty());
  EXPECT_TRUE(back.schedule.flaps.empty());
  ASSERT_TRUE(back.search.violation.has_value());
  EXPECT_EQ(back.search.violation->oracle, witness.violation->oracle);
}

}  // namespace
}  // namespace dgmc::check
