#include "exec/pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/fingerprint_set.hpp"

namespace dgmc::exec {
namespace {

// Scoped DGMC_JOBS override (setenv/unsetenv are not thread-safe; the
// tests using this run single-threaded).
class JobsEnvGuard {
 public:
  explicit JobsEnvGuard(const char* value) {
    const char* prev = std::getenv("DGMC_JOBS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value) {
      setenv("DGMC_JOBS", value, 1);
    } else {
      unsetenv("DGMC_JOBS");
    }
  }
  ~JobsEnvGuard() {
    if (had_prev_) {
      setenv("DGMC_JOBS", prev_.c_str(), 1);
    } else {
      unsetenv("DGMC_JOBS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(PoolConfig, DefaultJobsHonorsEnv) {
  JobsEnvGuard guard("3");
  EXPECT_EQ(default_jobs(), 3u);
  EXPECT_EQ(resolve_jobs(0), 3u);
  EXPECT_EQ(resolve_jobs(5), 5u);  // explicit request wins
}

TEST(PoolConfig, DefaultJobsIgnoresGarbageEnv) {
  {
    JobsEnvGuard guard("not-a-number");
    EXPECT_GE(default_jobs(), 1u);
  }
  {
    JobsEnvGuard guard("0");
    EXPECT_GE(default_jobs(), 1u);
  }
  {
    JobsEnvGuard guard("-4");
    EXPECT_GE(default_jobs(), 1u);
  }
}

TEST(Pool, SizeOneRunsInlineInSubmissionOrder) {
  Pool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&order, i, caller] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);
    });
    // Inline mode: the task has already run when submit returns.
    EXPECT_EQ(order.size(), static_cast<std::size_t>(i + 1));
  }
  pool.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Pool, ParallelForRunsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    constexpr std::size_t kN = 500;
    std::vector<std::atomic<int>> hits(kN);
    Pool pool(jobs);
    parallel_for(pool, kN, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(Pool, ParallelForConvenienceOverload) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, [&hits](std::size_t i) { hits[i].fetch_add(1); }, 2);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, WaitRethrowsFirstTaskException) {
  Pool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.submit([] { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool cancelled itself; later submissions are dropped.
  EXPECT_TRUE(pool.cancelled());
}

TEST(Pool, InlinePoolPropagatesExceptionToo) {
  Pool pool(1);
  // In inline mode the throw happens inside submit; either surfacing
  // point is fine as long as wait() reports it and clears it.
  try {
    pool.submit([] { throw std::runtime_error("inline boom"); });
    pool.wait();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inline boom");
  }
}

TEST(Pool, ExceptionCancelsPoolAndDiscardsSubsequentWork) {
  // Which already-queued tasks still run after a throw depends on who
  // dequeues them first (a worker or a stealing helper), so the
  // deterministic claim is: once the exception has triggered
  // cancellation, queued and future work is dropped and wait()
  // rethrows.
  Pool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int spin = 0; spin < 10000 && !pool.cancelled(); ++spin) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(pool.cancelled());
  std::atomic<int> ran{0};
  for (int i = 0; i < 40; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 0);
}

TEST(Pool, CancelDropsQueuedTasksAndFutureSubmits) {
  Pool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
  }
  for (int i = 0; i < 40; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.cancel();
  EXPECT_TRUE(pool.cancelled());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.wait();
  EXPECT_EQ(ran.load(), 0);
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(Pool, NestedSubmitOverBoundRunsInlineInsteadOfDeadlocking) {
  // A tiny queue bound plus tasks that themselves submit: if a worker
  // blocked on a full queue the pool would deadlock on itself. The
  // inline fallback means this completes, and every subtask runs.
  Pool pool(2, /*queue_bound=*/2);
  std::atomic<int> subtasks{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &subtasks] {
      for (int j = 0; j < 8; ++j) {
        pool.submit([&subtasks] { subtasks.fetch_add(1); });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(subtasks.load(), 64);
}

TEST(Pool, ReusableAcrossWaves) {
  Pool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), (wave + 1) * 20);
  }
}

TEST(Pool, WaitWithNothingSubmittedReturns) {
  Pool pool(2);
  pool.wait();
  pool.wait();
}

TEST(Pool, ManyTasksAcrossManyWorkersAllComplete) {
  // Stress hand-off and stealing; sized to finish fast yet exercise
  // contention. Also a TSan target for the deque/counter locking.
  Pool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(FingerprintSet, InsertReportsNovelty) {
  FingerprintSet set(8);
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));
  EXPECT_TRUE(set.insert(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FingerprintSet, ZeroFingerprintIsStorable) {
  FingerprintSet set(8);
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FingerprintSet, SaturatesInsteadOfOverflowing) {
  FingerprintSet set(4);  // capacity 16, usable load is lower
  for (std::uint64_t fp = 1; fp <= 64; ++fp) (void)set.insert(fp);
  EXPECT_TRUE(set.saturated());
  EXPECT_LE(set.size(), set.capacity());
}

TEST(FingerprintSet, ConcurrentInsertCountsUniques) {
  // 4 threads insert overlapping ranges; the set must end with exactly
  // the union's cardinality regardless of interleaving.
  FingerprintSet set(16);
  constexpr std::uint64_t kUniques = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&set, t] {
      // Each thread covers [0, kUniques) with a different stride phase
      // so every value is inserted by at least two threads.
      for (std::uint64_t i = 0; i < kUniques; ++i) {
        (void)set.insert((i + static_cast<std::uint64_t>(t) * 7) % kUniques +
                         1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size(), kUniques);
  EXPECT_FALSE(set.saturated());
}

}  // namespace
}  // namespace dgmc::exec
