#include "des/resource.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "des/mailbox.hpp"

namespace dgmc::des {
namespace {

TEST(SerialResource, SingleJobCompletesAfterDuration) {
  Scheduler s;
  SerialResource cpu(s);
  double done_at = -1.0;
  cpu.submit(2.5, [&] { done_at = s.now(); });
  EXPECT_TRUE(cpu.busy());
  s.run();
  EXPECT_DOUBLE_EQ(done_at, 2.5);
  EXPECT_FALSE(cpu.busy());
  EXPECT_EQ(cpu.completed(), 1u);
}

TEST(SerialResource, JobsSerializeFifo) {
  Scheduler s;
  SerialResource cpu(s);
  std::vector<std::pair<int, double>> completions;
  cpu.submit(1.0, [&] { completions.push_back({1, s.now()}); });
  cpu.submit(2.0, [&] { completions.push_back({2, s.now()}); });
  cpu.submit(0.5, [&] { completions.push_back({3, s.now()}); });
  EXPECT_EQ(cpu.queue_length(), 2u);
  s.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], (std::pair<int, double>{1, 1.0}));
  EXPECT_EQ(completions[1], (std::pair<int, double>{2, 3.0}));
  EXPECT_EQ(completions[2], (std::pair<int, double>{3, 3.5}));
}

TEST(SerialResource, SubmitFromCompletionCallback) {
  Scheduler s;
  SerialResource cpu(s);
  double second_done = -1.0;
  cpu.submit(1.0, [&] {
    cpu.submit(1.0, [&] { second_done = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(second_done, 2.0);
  EXPECT_EQ(cpu.completed(), 2u);
}

TEST(SerialResource, ZeroDurationJob) {
  Scheduler s;
  SerialResource cpu(s);
  bool ran = false;
  cpu.submit(0.0, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(SerialResource, InterleavesWithOtherEvents) {
  Scheduler s;
  SerialResource cpu(s);
  std::vector<int> order;
  cpu.submit(2.0, [&] { order.push_back(100); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 100, 3}));
}

TEST(Mailbox, DeliverAndReceive) {
  Scheduler s;
  Mailbox<int> mb(s);
  EXPECT_TRUE(mb.empty());
  mb.deliver(7);
  mb.deliver(8);
  EXPECT_EQ(mb.size(), 2u);
  EXPECT_EQ(mb.try_receive().value(), 7);
  EXPECT_EQ(mb.try_receive().value(), 8);
  EXPECT_FALSE(mb.try_receive().has_value());
}

TEST(Mailbox, NotificationFiresPerDelivery) {
  Scheduler s;
  Mailbox<int> mb(s);
  int notifications = 0;
  mb.on_message([&] { ++notifications; });
  mb.deliver(1);
  mb.deliver(2);
  EXPECT_EQ(notifications, 2);
}

TEST(Mailbox, DeliverAfterUsesSimTime) {
  Scheduler s;
  Mailbox<std::string> mb(s);
  double arrival = -1.0;
  mb.on_message([&] { arrival = s.now(); });
  mb.deliver_after(4.0, "hello");
  EXPECT_TRUE(mb.empty());
  s.run();
  EXPECT_DOUBLE_EQ(arrival, 4.0);
  EXPECT_EQ(mb.try_receive().value(), "hello");
}

TEST(Mailbox, DrainPatternWhileHandling) {
  // A handler that drains the mailbox completely models the paper's
  // ReceiveLSA "WHILE there are LSAs in mailbox" loop.
  Scheduler s;
  Mailbox<int> mb(s);
  std::vector<int> seen;
  mb.on_message([&] {
    while (auto m = mb.try_receive()) seen.push_back(*m);
  });
  mb.deliver(1);
  mb.deliver(2);
  mb.deliver(3);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace dgmc::des
