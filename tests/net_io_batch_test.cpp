// Batched-I/O fast path: the buffer pool, the coalescing flush queues,
// the EAGAIN/hard-error transmit accounting, and the io_uring flavor's
// conformance to the same IoLoop contract.
//
// The transmit-failure tests use EventLoop::set_tx_test_hook — real
// loopback UDP essentially never returns EAGAIN, so the kernel's
// refusals are simulated at the syscall boundary while everything
// around them (queues, counters, EPOLLOUT re-arm, delivery) is real.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/buffer_pool.hpp"
#include "net/event_loop.hpp"
#include "net/io_loop.hpp"

namespace dgmc::net {
namespace {

// ---------------------------------------------------------------- pool

TEST(BufferPool, ExhaustionFallsBackToHeapAndNeverFails) {
  BufferPool pool(/*max_pooled=*/2, /*slab_bytes=*/64);
  // Fresh pool: every acquire is a heap fallback (freelist is empty).
  std::vector<std::vector<std::uint8_t>> live;
  for (int i = 0; i < 4; ++i) live.push_back(pool.acquire(16));
  EXPECT_EQ(pool.counters().heap_fallbacks, 4u);
  EXPECT_EQ(pool.counters().pool_hits, 0u);
  for (auto& b : live) {
    EXPECT_EQ(b.size(), 16u);
    pool.release(std::move(b));
  }
  live.clear();
  // All four came back; the adaptive bound (high water = 4 outstanding)
  // lets the pool retain more than max_pooled.
  EXPECT_EQ(pool.pooled(), 4u);
  EXPECT_EQ(pool.high_water(), 4u);
  // Steady state at the same concurrency: all hits, no new mallocs.
  for (int i = 0; i < 4; ++i) live.push_back(pool.acquire(32));
  EXPECT_EQ(pool.counters().pool_hits, 4u);
  EXPECT_EQ(pool.counters().heap_fallbacks, 4u);
  for (auto& b : live) pool.release(std::move(b));
}

TEST(BufferPool, OversizedBuffersAreNotPooled) {
  BufferPool pool(/*max_pooled=*/8, /*slab_bytes=*/64);
  auto big = pool.acquire(1000);  // larger than a slab: heap fallback
  EXPECT_EQ(big.size(), 1000u);
  EXPECT_EQ(pool.counters().heap_fallbacks, 1u);
  pool.release(std::move(big));
  EXPECT_EQ(pool.pooled(), 0u);  // oversized capacity is never retained
}

TEST(BufferPool, ReleasedBuffersKeepSlabCapacity) {
  BufferPool pool(/*max_pooled=*/8, /*slab_bytes=*/64);
  auto a = pool.acquire(10);
  const auto cap = a.capacity();
  EXPECT_GE(cap, 64u);
  pool.release(std::move(a));
  auto b = pool.acquire(64);  // recycled slab serves the full slab size
  EXPECT_EQ(pool.counters().pool_hits, 1u);
  EXPECT_EQ(b.capacity(), cap);
  pool.release(std::move(b));
}

// ------------------------------------------------------- loop fixtures

int make_loopback_udp(sockaddr_in* addr) {
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  bind_addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&bind_addr),
                   sizeof bind_addr),
            0);
  socklen_t len = sizeof *addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(addr), &len), 0);
  return fd;
}

std::vector<std::uint8_t> frame_bytes(int seq) {
  std::vector<std::uint8_t> b(8);
  std::memcpy(b.data(), &seq, sizeof seq);
  return b;
}

int frame_seq(const std::uint8_t* data, std::size_t len) {
  EXPECT_EQ(len, 8u);
  int seq = -1;
  std::memcpy(&seq, data, sizeof seq);
  return seq;
}

// Runs `loop` until `done()` or a 5 s deadline (fails the test).
template <typename Loop, typename Done>
void run_until(Loop& loop, Done done) {
  bool timed_out = false;
  std::function<void()> poll = [&] {
    if (done() || timed_out) {
      loop.stop();
      return;
    }
    loop.schedule_after(0.002, [&] { poll(); });
  };
  loop.schedule_after(0.0, [&] { poll(); });
  loop.schedule_after(5.0, [&] {
    timed_out = true;
    loop.stop();
  });
  loop.run();
  EXPECT_FALSE(timed_out) << "run_until deadline hit";
}

// ------------------------------------------- coalesced flush semantics

TEST(NetBatchedTx, OneCallbackManyDestinationsOneSyscallFifoOrder) {
  EventLoop loop(LoopFlavor::kEpoll);
  sockaddr_in dst_a{}, dst_b{};
  const int rx_a = make_loopback_udp(&dst_a);
  const int rx_b = make_loopback_udp(&dst_b);
  sockaddr_in src_addr{};
  const int tx = make_loopback_udp(&src_addr);

  std::vector<int> got_a, got_b;
  loop.add_udp(rx_a, [&](const std::uint8_t* d, std::size_t n) {
    got_a.push_back(frame_seq(d, n));
  });
  loop.add_udp(rx_b, [&](const std::uint8_t* d, std::size_t n) {
    got_b.push_back(frame_seq(d, n));
  });
  loop.add_udp(tx, [](const std::uint8_t*, std::size_t) {});

  const std::uint64_t tx_syscalls_before = loop.io_stats().tx_syscalls;
  loop.schedule_after(0.0, [&] {
    // Interleave destinations inside one callback: the flush must
    // still be a single sendmmsg (per-destination addresses in the
    // batch) and per-destination order must survive.
    for (int i = 0; i < 6; ++i) {
      const auto f = frame_bytes(i);
      loop.send_udp(tx, (i % 2 == 0) ? dst_a : dst_b, f.data(), f.size());
    }
  });
  run_until(loop, [&] { return got_a.size() == 3 && got_b.size() == 3; });

  EXPECT_EQ(loop.io_stats().tx_syscalls - tx_syscalls_before, 1u);
  EXPECT_EQ(got_a, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(got_b, (std::vector<int>{1, 3, 5}));
  const TxCounters tx_counters = loop.tx_counters(tx);
  EXPECT_EQ(tx_counters.sent, 6u);
  EXPECT_EQ(tx_counters.requeued, 0u);
  EXPECT_EQ(tx_counters.dropped, 0u);

  loop.remove_udp(rx_a);
  loop.remove_udp(rx_b);
  loop.remove_udp(tx);
  ::close(rx_a);
  ::close(rx_b);
  ::close(tx);
}

TEST(NetBatchedTx, EagainRequeuesAndEpolloutFinishesTheFlush) {
  EventLoop loop(LoopFlavor::kEpoll);
  sockaddr_in dst{};
  const int rx = make_loopback_udp(&dst);
  sockaddr_in src_addr{};
  const int tx = make_loopback_udp(&src_addr);

  std::vector<int> got;
  loop.add_udp(rx, [&](const std::uint8_t* d, std::size_t n) {
    got.push_back(frame_seq(d, n));
  });
  loop.add_udp(tx, [](const std::uint8_t*, std::size_t) {});

  // First flush attempt: kernel "takes" nothing (EAGAIN). The frames
  // must stay queued, count as requeued, and go out when EPOLLOUT
  // fires — in the original order, with nothing dropped.
  int refusals = 2;
  loop.set_tx_test_hook([&](std::size_t) -> int {
    if (refusals > 0) {
      --refusals;
      return 0;  // simulate EAGAIN: nothing accepted
    }
    return 1 << 20;  // accept everything
  });

  loop.schedule_after(0.0, [&] {
    for (int i = 0; i < 5; ++i) {
      const auto f = frame_bytes(i);
      loop.send_udp(tx, dst, f.data(), f.size());
    }
  });
  run_until(loop, [&] { return got.size() == 5; });

  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  const TxCounters tx_counters = loop.tx_counters(tx);
  EXPECT_EQ(tx_counters.sent, 5u);
  // Each refused flush counts every still-queued frame once.
  EXPECT_EQ(tx_counters.requeued, 10u);
  EXPECT_EQ(tx_counters.dropped, 0u);

  loop.set_tx_test_hook(nullptr);
  loop.remove_udp(rx);
  loop.remove_udp(tx);
  ::close(rx);
  ::close(tx);
}

TEST(NetBatchedTx, HardErrorDropsHeadFrameAndKeepsGoing) {
  EventLoop loop(LoopFlavor::kEpoll);
  sockaddr_in dst{};
  const int rx = make_loopback_udp(&dst);
  sockaddr_in src_addr{};
  const int tx = make_loopback_udp(&src_addr);

  std::vector<int> got;
  loop.add_udp(rx, [&](const std::uint8_t* d, std::size_t n) {
    got.push_back(frame_seq(d, n));
  });
  loop.add_udp(tx, [](const std::uint8_t*, std::size_t) {});

  // One hard failure: the head frame is dropped (counted) and the
  // remaining frames still flush.
  bool failed_once = false;
  loop.set_tx_test_hook([&](std::size_t) -> int {
    if (!failed_once) {
      failed_once = true;
      return EventLoop::kTxHookFail;
    }
    return 1 << 20;
  });

  loop.schedule_after(0.0, [&] {
    for (int i = 0; i < 4; ++i) {
      const auto f = frame_bytes(i);
      loop.send_udp(tx, dst, f.data(), f.size());
    }
  });
  run_until(loop, [&] { return got.size() == 3; });

  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));  // frame 0 was the casualty
  const TxCounters tx_counters = loop.tx_counters(tx);
  EXPECT_EQ(tx_counters.sent, 3u);
  EXPECT_EQ(tx_counters.dropped, 1u);

  loop.set_tx_test_hook(nullptr);
  loop.remove_udp(rx);
  loop.remove_udp(tx);
  ::close(rx);
  ::close(tx);
}

TEST(NetBatchedTx, PerPacketFlavorRequeuesBehindEagainInOrder) {
  EventLoop loop(LoopFlavor::kEpollPacket);
  sockaddr_in dst{};
  const int rx = make_loopback_udp(&dst);
  sockaddr_in src_addr{};
  const int tx = make_loopback_udp(&src_addr);

  std::vector<int> got;
  loop.add_udp(rx, [&](const std::uint8_t* d, std::size_t n) {
    got.push_back(frame_seq(d, n));
  });
  loop.add_udp(tx, [](const std::uint8_t*, std::size_t) {});

  // The immediate sendto of frame 0 is refused: it parks in the queue
  // and later frames must queue BEHIND it (overtaking would break
  // per-destination FIFO) even though the kernel would take them.
  bool refused_once = false;
  loop.set_tx_test_hook([&](std::size_t) -> int {
    if (!refused_once) {
      refused_once = true;
      return 0;
    }
    return 1 << 20;
  });

  loop.schedule_after(0.0, [&] {
    for (int i = 0; i < 3; ++i) {
      const auto f = frame_bytes(i);
      loop.send_udp(tx, dst, f.data(), f.size());
    }
  });
  run_until(loop, [&] { return got.size() == 3; });

  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  const TxCounters tx_counters = loop.tx_counters(tx);
  EXPECT_EQ(tx_counters.sent, 3u);
  EXPECT_GE(tx_counters.requeued, 1u);
  EXPECT_EQ(tx_counters.dropped, 0u);

  loop.set_tx_test_hook(nullptr);
  loop.remove_udp(rx);
  loop.remove_udp(tx);
  ::close(rx);
  ::close(tx);
}

// ------------------------------------------------------- uring flavor

// The io_uring flavor must satisfy the same observable contract. Each
// test skips cleanly where the kernel (or the build) lacks support —
// the CI uring lane turns into a no-op instead of a failure.
std::unique_ptr<IoLoop> make_uring_or_skip() {
  bool fell_back = false;
  auto loop = make_io_loop(LoopFlavor::kUring, &fell_back);
  if (fell_back) return nullptr;
  return loop;
}

TEST(NetUringLoop, DeliversDatagramsInOrder) {
  auto loop = make_uring_or_skip();
  if (!loop) GTEST_SKIP() << "io_uring unavailable on this kernel/build";

  sockaddr_in dst{};
  const int rx = make_loopback_udp(&dst);
  sockaddr_in src_addr{};
  const int tx = make_loopback_udp(&src_addr);

  std::vector<int> got;
  loop->add_udp(rx, [&](const std::uint8_t* d, std::size_t n) {
    got.push_back(frame_seq(d, n));
  });
  loop->add_udp(tx, [](const std::uint8_t*, std::size_t) {});

  loop->schedule_after(0.0, [&] {
    for (int i = 0; i < 100; ++i) {
      const auto f = frame_bytes(i);
      loop->send_udp(tx, dst, f.data(), f.size());
    }
  });
  run_until(*loop, [&] { return got.size() == 100; });

  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  const TxCounters tx_counters = loop->tx_counters(tx);
  EXPECT_EQ(tx_counters.sent, 100u);
  EXPECT_EQ(tx_counters.dropped, 0u);
  // 100 frames left as linked chains, not per-datagram syscalls.
  EXPECT_LT(loop->io_stats().uring_enters, 50u);

  loop->remove_udp(rx);
  loop->remove_udp(tx);
  ::close(rx);
  ::close(tx);
}

TEST(NetUringLoop, TimersAndPostBehaveLikeEpoll) {
  auto loop = make_uring_or_skip();
  if (!loop) GTEST_SKIP() << "io_uring unavailable on this kernel/build";

  std::vector<int> order;
  loop->schedule_after(0.02, [&] { order.push_back(2); });
  loop->schedule_after(0.01, [&] { order.push_back(1); });
  const rt::TimerId id = loop->schedule_after(0.015, [&] {
    order.push_back(99);  // must never run
  });
  EXPECT_TRUE(loop->cancel(id));
  loop->post([&] { order.push_back(0); });
  loop->schedule_after(0.03, [&] { loop->stop(); });
  loop->run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(NetUringLoop, RemoveUdpDuringTrafficIsSafe) {
  auto loop = make_uring_or_skip();
  if (!loop) GTEST_SKIP() << "io_uring unavailable on this kernel/build";

  sockaddr_in dst{};
  const int rx = make_loopback_udp(&dst);
  sockaddr_in src_addr{};
  const int tx = make_loopback_udp(&src_addr);

  int got = 0;
  loop->add_udp(rx, [&](const std::uint8_t*, std::size_t) {
    // Deregister from inside the handler mid-burst: in-flight
    // completions for the old registration must not touch the loop.
    if (++got == 3) loop->remove_udp(rx);
  });
  loop->add_udp(tx, [](const std::uint8_t*, std::size_t) {});

  loop->schedule_after(0.0, [&] {
    for (int i = 0; i < 20; ++i) {
      const auto f = frame_bytes(i);
      loop->send_udp(tx, dst, f.data(), f.size());
    }
  });
  run_until(*loop, [&] { return got >= 3; });
  EXPECT_GE(got, 3);

  loop->remove_udp(tx);
  ::close(rx);
  ::close(tx);
}

// ---------------------------------------------------- factory fallback

TEST(NetIoLoopFactory, UringRequestNeverReturnsNull) {
  bool fell_back = true;
  auto loop = make_io_loop(LoopFlavor::kUring, &fell_back);
  ASSERT_NE(loop, nullptr);
  if (fell_back) {
    EXPECT_EQ(loop->flavor(), LoopFlavor::kEpoll);
  } else {
    EXPECT_EQ(loop->flavor(), LoopFlavor::kUring);
  }
}

TEST(NetIoLoopFactory, FlavorNamesRoundTrip) {
  for (LoopFlavor f : {LoopFlavor::kEpollPacket, LoopFlavor::kEpoll,
                       LoopFlavor::kUring}) {
    const auto parsed = parse_flavor(flavor_name(f));
    ASSERT_TRUE(parsed.has_value()) << flavor_name(f);
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(parse_flavor("kqueue").has_value());
}

}  // namespace
}  // namespace dgmc::net
