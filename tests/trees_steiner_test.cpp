#include "trees/steiner.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trees/exact.hpp"
#include "util/rng.hpp"

namespace dgmc::trees {
namespace {

TEST(InducedMst, SimpleTriangle) {
  graph::Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 2.0);
  g.add_link(0, 2, 3.0);
  const Topology t = induced_mst(g, {0, 1, 2});
  EXPECT_EQ(t, Topology({Edge(0, 1), Edge(1, 2)}));
}

TEST(InducedMst, DisconnectedInducedSubgraphIsEmpty) {
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  // Nodes {0, 3} induce no edges.
  EXPECT_TRUE(induced_mst(g, {0, 3}).empty());
}

TEST(InducedMst, SingleOrNoNodes) {
  const graph::Graph g = graph::line(3);
  EXPECT_TRUE(induced_mst(g, {1}).empty());
  EXPECT_TRUE(induced_mst(g, {}).empty());
}

TEST(PruneNonTerminalLeaves, RemovesDanglingBranches) {
  // Path 0-1-2-3 with terminals {0, 2}: edge 2-3 dangles.
  Topology t({Edge(0, 1), Edge(1, 2), Edge(2, 3)});
  const Topology pruned = prune_non_terminal_leaves(std::move(t), {0, 2});
  EXPECT_EQ(pruned, Topology({Edge(0, 1), Edge(1, 2)}));
}

TEST(PruneNonTerminalLeaves, CascadesThroughChains) {
  // 0-1-2-3-4 with terminals {0, 1}: 2,3,4 all prune away.
  Topology t({Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(3, 4)});
  const Topology pruned = prune_non_terminal_leaves(std::move(t), {0, 1});
  EXPECT_EQ(pruned, Topology({Edge(0, 1)}));
}

TEST(KmbSteiner, TrivialCases) {
  const graph::Graph g = graph::line(4);
  EXPECT_TRUE(kmb_steiner(g, {}).empty());
  EXPECT_TRUE(kmb_steiner(g, {2}).empty());
  EXPECT_TRUE(kmb_steiner(g, {2, 2}).empty());  // duplicates collapse
}

TEST(KmbSteiner, LineEndpoints) {
  const graph::Graph g = graph::line(5);
  const Topology t = kmb_steiner(g, {0, 4});
  EXPECT_EQ(t.edge_count(), 4u);
  EXPECT_TRUE(is_steiner_tree(t, {0, 4}));
}

TEST(KmbSteiner, UsesSteinerNodeWhenCheaper) {
  // Star: terminals are three leaves; the hub is a Steiner node.
  const graph::Graph g = graph::star(5);
  const Topology t = kmb_steiner(g, {1, 2, 3});
  EXPECT_EQ(t, Topology({Edge(0, 1), Edge(0, 2), Edge(0, 3)}));
}

TEST(KmbSteiner, ValidOnRandomGraphs) {
  util::RngStream rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::Graph g = graph::random_connected(40, 3.0, rng);
    std::vector<NodeId> terminals;
    for (int i = 0; i < 8; ++i) {
      terminals.push_back(static_cast<NodeId>(rng.index(40)));
    }
    const Topology t = kmb_steiner(g, terminals);
    EXPECT_TRUE(is_steiner_tree(t, terminals)) << "trial=" << trial;
    EXPECT_TRUE(uses_only_live_links(g, t));
  }
}

TEST(KmbSteiner, AvoidsDownLinks) {
  graph::Graph g = graph::ring(6);
  g.set_link_up(g.find_link(0, 1), false);
  const Topology t = kmb_steiner(g, {0, 1});
  EXPECT_TRUE(is_steiner_tree(t, {0, 1}));
  EXPECT_FALSE(t.contains(Edge(0, 1)));
  EXPECT_EQ(t.edge_count(), 5u);  // the long way around
}

TEST(ExactSteiner, MatchesHandComputedOptimum) {
  // Terminals {1,2,3} on a star: optimum uses the hub, cost 3.
  const graph::Graph g = graph::star(5);
  const Topology t = exact_steiner(g, {1, 2, 3});
  EXPECT_DOUBLE_EQ(topology_cost(g, t), 3.0);
}

TEST(KmbVsExact, WithinTwoApproximationOnSmallGraphs) {
  util::RngStream rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::random_connected(12, 3.0, rng);
    std::vector<NodeId> terminals = {0, 3, 7, 11};
    const double kmb = topology_cost(g, kmb_steiner(g, terminals));
    const double opt = topology_cost(g, exact_steiner(g, terminals));
    EXPECT_LE(kmb, 2.0 * opt + 1e-9) << "trial=" << trial;
    EXPECT_GE(kmb, opt - 1e-9);
  }
}

TEST(KmbSteiner, DeterministicAcrossCalls) {
  util::RngStream rng(29);
  const graph::Graph g = graph::random_connected(30, 3.0, rng);
  const std::vector<NodeId> terminals = {1, 5, 9, 13, 22};
  EXPECT_EQ(kmb_steiner(g, terminals), kmb_steiner(g, terminals));
}

}  // namespace
}  // namespace dgmc::trees
