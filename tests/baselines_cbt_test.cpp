#include "baselines/cbt.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace dgmc::baselines {
namespace {

TEST(Cbt, FirstJoinBuildsPathToCore) {
  CbtNetwork net(graph::line(5), /*core=*/0);
  net.join(4);
  net.run_to_quiescence();
  EXPECT_TRUE(net.is_member(4));
  EXPECT_EQ(net.tree(), trees::Topology({graph::Edge(0, 1), graph::Edge(1, 2),
                                         graph::Edge(2, 3),
                                         graph::Edge(3, 4)}));
  for (graph::NodeId n = 0; n < 5; ++n) EXPECT_TRUE(net.on_tree(n));
}

TEST(Cbt, SecondJoinGraftsAtNearestTreePoint) {
  // Star: spokes join directly to the hub/core.
  CbtNetwork net(graph::star(6), /*core=*/0);
  net.join(2);
  net.run_to_quiescence();
  net.join(5);
  net.run_to_quiescence();
  EXPECT_EQ(net.tree(),
            trees::Topology({graph::Edge(0, 2), graph::Edge(0, 5)}));
}

TEST(Cbt, JoinOfCoreIsTrivial) {
  CbtNetwork net(graph::line(4), /*core=*/1);
  net.join(1);
  net.run_to_quiescence();
  EXPECT_TRUE(net.is_member(1));
  EXPECT_TRUE(net.tree().empty());  // core alone: no branches
}

TEST(Cbt, LeavePrunesDanglingBranch) {
  CbtNetwork net(graph::line(5), /*core=*/0);
  net.join(2);
  net.run_to_quiescence();
  net.join(4);
  net.run_to_quiescence();
  EXPECT_EQ(net.tree().edge_count(), 4u);
  net.leave(4);
  net.run_to_quiescence();
  // Branch 2-3-4 prunes back to member 2.
  EXPECT_EQ(net.tree(),
            trees::Topology({graph::Edge(0, 1), graph::Edge(1, 2)}));
  net.leave(2);
  net.run_to_quiescence();
  EXPECT_TRUE(net.tree().empty());
}

TEST(Cbt, LeaveOfMidTreeMemberKeepsBranchForDownstream) {
  CbtNetwork net(graph::line(5), /*core=*/0);
  net.join(2);
  net.run_to_quiescence();
  net.join(4);
  net.run_to_quiescence();
  net.leave(2);  // still transit for member 4
  net.run_to_quiescence();
  EXPECT_EQ(net.tree().edge_count(), 4u);
  EXPECT_FALSE(net.is_member(2));
  EXPECT_TRUE(net.on_tree(2));
}

TEST(Cbt, DuplicateJoinLeaveAreIdempotent) {
  CbtNetwork net(graph::ring(6), /*core=*/0);
  net.join(3);
  net.join(3);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().joins, 1u);
  net.leave(3);
  net.leave(3);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().leaves, 1u);
  EXPECT_TRUE(net.tree().empty());
}

TEST(Cbt, TreeIsSteinerTreeOverMembersAndCore) {
  util::RngStream rng(3);
  const graph::Graph g = graph::random_connected(30, 3.0, rng);
  CbtNetwork net(g, /*core=*/0);
  std::vector<graph::NodeId> members = {4, 11, 19, 27};
  for (graph::NodeId m : members) {
    net.join(m);
    net.run_to_quiescence();
  }
  std::vector<graph::NodeId> required = members;
  required.push_back(0);
  EXPECT_TRUE(trees::is_steiner_tree(net.tree(), required));
}

TEST(Cbt, CorePlacementAffectsTreeCost) {
  // The §5 core-selection problem: a poor core inflates the tree
  // versus the Steiner tree D-GMC would build.
  const graph::Graph g = graph::line(10);
  const std::vector<graph::NodeId> members = {0, 1, 2};

  CbtNetwork good(g, /*core=*/1);
  CbtNetwork bad(g, /*core=*/9);
  for (graph::NodeId m : members) {
    good.join(m);
    bad.join(m);
  }
  good.run_to_quiescence();
  bad.run_to_quiescence();
  const double good_cost = trees::topology_cost(g, good.tree());
  const double bad_cost = trees::topology_cost(g, bad.tree());
  const double steiner_cost =
      trees::topology_cost(g, trees::kmb_steiner(g, members));
  EXPECT_DOUBLE_EQ(good_cost, steiner_cost);
  EXPECT_GT(bad_cost, 3.0 * steiner_cost);
}

TEST(Cbt, ControlTrafficIsLocalNotFlooded) {
  CbtNetwork net(graph::line(8), /*core=*/0);
  net.join(7);
  net.run_to_quiescence();
  // 7 hops of JOIN + 7 hops of ACK — no network-wide flooding.
  EXPECT_EQ(net.totals().control_hops, 14u);
}

}  // namespace
}  // namespace dgmc::baselines
