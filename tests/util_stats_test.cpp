#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace dgmc::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, KnownDataset) {
  // Mean 5, sample variance 4 for {3, 5, 7} -> stddev 2.
  OnlineStats s;
  for (double x : {3.0, 5.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
  OnlineStats s;
  std::vector<double> xs = {1.5, -2.25, 8.0, 0.0, 3.5, 3.5, -1.0};
  for (double x : xs) s.add(x);
  const double mean = mean_of(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(OnlineStats, Ci95UsesStudentT) {
  // n=20 -> t(19) = 2.093; samples with stddev 1 centered at 0.
  OnlineStats s;
  for (int i = 0; i < 10; ++i) {
    s.add(1.0);
    s.add(-1.0);
  }
  const double se = s.stddev() / std::sqrt(20.0);
  EXPECT_NEAR(s.ci95_halfwidth(), 2.093 * se, 1e-9);
}

TEST(TCritical, TableValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(19), 2.093);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(t_critical_95(200), 1.960);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
}

TEST(TCritical, MonotoneNonIncreasing) {
  double prev = t_critical_95(1);
  for (std::size_t df = 2; df <= 150; ++df) {
    const double cur = t_critical_95(df);
    EXPECT_LE(cur, prev) << "df=" << df;
    prev = cur;
  }
}

TEST(Summary, Rendering) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  const Summary sum = Summary::of(s);
  EXPECT_EQ(sum.n, 2u);
  EXPECT_DOUBLE_EQ(sum.mean, 2.0);
  EXPECT_EQ(sum.to_string(1).substr(0, 3), "2.0");
  EXPECT_NE(sum.to_string().find("±"), std::string::npos);
}

TEST(MeanOf, EmptyAndNonEmpty) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace dgmc::util
