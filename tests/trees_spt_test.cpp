#include "trees/spt.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dgmc::trees {
namespace {

TEST(ShortestPathTree, SpansAllReachableNodes) {
  util::RngStream rng(1);
  const Graph g = graph::random_connected(25, 3.0, rng);
  const Topology t = shortest_path_tree(g, 0);
  EXPECT_EQ(t.edge_count(), 24u);  // spanning tree
  EXPECT_TRUE(is_forest(t));
  std::vector<NodeId> all(25);
  for (NodeId i = 0; i < 25; ++i) all[i] = i;
  EXPECT_TRUE(is_steiner_tree(t, all));
}

TEST(ShortestPathTree, PreservesShortestDistances) {
  util::RngStream rng(2);
  const Graph g = graph::random_connected(20, 3.0, rng);
  const Topology t = shortest_path_tree(g, 0);
  const graph::ShortestPaths sp = graph::dijkstra(g, 0);
  // Walking the tree from any node toward the root must follow a
  // shortest path: the parent edge of n connects it to a node whose
  // distance is dist[n] - cost(edge).
  for (const Edge& e : t.edges()) {
    const double w = g.link(g.find_link(e.a, e.b)).cost;
    const double da = sp.dist[e.a];
    const double db = sp.dist[e.b];
    EXPECT_NEAR(std::abs(da - db), w, 1e-9);
  }
}

TEST(PrunedSpt, KeepsOnlyTerminalPaths) {
  // Line 0-1-2-3-4; terminals {2}: the pruned SPT from 0 is 0-1-2.
  const Graph g = graph::line(5);
  const Topology t = pruned_spt(g, 0, {2});
  EXPECT_EQ(t, Topology({Edge(0, 1), Edge(1, 2)}));
}

TEST(PrunedSpt, MultipleTerminalsShareTrunk) {
  // Star with hub 0: terminals 1 and 2 yield exactly two spokes.
  const Graph g = graph::star(6);
  const Topology t = pruned_spt(g, 0, {1, 2});
  EXPECT_EQ(t, Topology({Edge(0, 1), Edge(0, 2)}));
}

TEST(PrunedSpt, RootIsTerminalOnlyNoEdges) {
  const Graph g = graph::line(4);
  EXPECT_TRUE(pruned_spt(g, 1, {1}).empty());
  EXPECT_TRUE(pruned_spt(g, 1, {}).empty());
}

TEST(PrunedSpt, SkipsUnreachableTerminals) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  const Topology t = pruned_spt(g, 0, {1, 3});
  EXPECT_EQ(t, Topology({Edge(0, 1)}));
}

TEST(PrunedSpt, IsSteinerTreeOverTerminalsPlusRoot) {
  util::RngStream rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::random_connected(30, 3.0, rng);
    std::vector<NodeId> terminals;
    for (NodeId n = 5; n < 30; n += 7) terminals.push_back(n);
    const Topology t = pruned_spt(g, 0, terminals);
    terminals.push_back(0);
    EXPECT_TRUE(is_steiner_tree(t, terminals)) << "trial=" << trial;
  }
}

TEST(SourceRootedUnion, SingleSourceEqualsPrunedSpt) {
  util::RngStream rng(4);
  const Graph g = graph::random_connected(20, 3.0, rng);
  const std::vector<NodeId> receivers = {3, 9, 15};
  EXPECT_EQ(source_rooted_union(g, {0}, receivers),
            pruned_spt(g, 0, receivers));
}

TEST(SourceRootedUnion, EverySenderReachesEveryReceiver) {
  util::RngStream rng(5);
  const Graph g = graph::random_connected(25, 3.0, rng);
  const std::vector<NodeId> sources = {0, 12};
  const std::vector<NodeId> receivers = {4, 8, 20};
  const Topology t = source_rooted_union(g, sources, receivers);
  for (NodeId s : sources) {
    for (NodeId r : receivers) {
      EXPECT_TRUE(connects(t, {s, r})) << s << "->" << r;
    }
  }
}

TEST(SourceRootedUnion, EmptySourcesOrReceivers) {
  const Graph g = graph::line(4);
  EXPECT_TRUE(source_rooted_union(g, {}, {1, 2}).empty());
  EXPECT_TRUE(source_rooted_union(g, {0}, {}).empty());
}

}  // namespace
}  // namespace dgmc::trees
