#include "mc/validation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dgmc::mc {
namespace {

using trees::Edge;
using trees::Topology;

MemberList make_members(
    const std::vector<std::pair<graph::NodeId, MemberRole>>& entries) {
  MemberList ml;
  for (auto [n, r] : entries) ml.join(n, r);
  return ml;
}

TEST(Validation, SymmetricNeedsSteinerTreeOverAllMembers) {
  const graph::Graph g = graph::line(5);
  const MemberList ml = make_members(
      {{0, MemberRole::kBoth}, {3, MemberRole::kBoth}});
  EXPECT_TRUE(is_valid_topology(
      g, McType::kSymmetric, ml,
      Topology({Edge(0, 1), Edge(1, 2), Edge(2, 3)})));
  // Missing a segment.
  EXPECT_FALSE(is_valid_topology(g, McType::kSymmetric, ml,
                                 Topology({Edge(0, 1)})));
  // Cycle (not a tree).
  const graph::Graph ring = graph::ring(4);
  const MemberList two = make_members(
      {{0, MemberRole::kBoth}, {2, MemberRole::kBoth}});
  EXPECT_FALSE(is_valid_topology(
      ring, McType::kSymmetric, two,
      Topology({Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(0, 3)})));
}

TEST(Validation, SingleMemberWantsEmptyTopology) {
  const graph::Graph g = graph::line(4);
  const MemberList ml = make_members({{1, MemberRole::kBoth}});
  EXPECT_TRUE(is_valid_topology(g, McType::kSymmetric, ml, Topology{}));
  EXPECT_FALSE(is_valid_topology(g, McType::kSymmetric, ml,
                                 Topology({Edge(0, 1)})));
}

TEST(Validation, RejectsDeadOrNonexistentEdges) {
  graph::Graph g = graph::line(4);
  const MemberList ml = make_members(
      {{0, MemberRole::kBoth}, {1, MemberRole::kBoth}});
  EXPECT_FALSE(is_valid_topology(g, McType::kSymmetric, ml,
                                 Topology({Edge(0, 2)})));  // no such link
  g.set_link_up(g.find_link(0, 1), false);
  EXPECT_FALSE(is_valid_topology(g, McType::kSymmetric, ml,
                                 Topology({Edge(0, 1)})));
}

TEST(Validation, ReceiverOnlySpansReceivers) {
  const graph::Graph g = graph::star(6);
  const MemberList ml = make_members(
      {{1, MemberRole::kReceiver}, {4, MemberRole::kReceiver}});
  EXPECT_TRUE(is_valid_topology(g, McType::kReceiverOnly, ml,
                                Topology({Edge(0, 1), Edge(0, 4)})));
}

TEST(Validation, AsymmetricAllowsCycles) {
  const graph::Graph g = graph::ring(4);
  MemberList ml;
  ml.join(0, MemberRole::kSender);
  ml.join(2, MemberRole::kSender);
  ml.join(1, MemberRole::kReceiver);
  ml.join(3, MemberRole::kReceiver);
  // Union of both senders' SPTs uses all four ring edges — cyclic but
  // valid for an asymmetric MC.
  const Topology all({Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(0, 3)});
  EXPECT_TRUE(is_valid_topology(g, McType::kAsymmetric, ml, all));
}

TEST(Validation, AsymmetricRequiresSenderReceiverPaths) {
  const graph::Graph g = graph::line(4);
  MemberList ml;
  ml.join(0, MemberRole::kSender);
  ml.join(3, MemberRole::kReceiver);
  EXPECT_FALSE(is_valid_topology(g, McType::kAsymmetric, ml,
                                 Topology({Edge(0, 1)})));
  EXPECT_TRUE(is_valid_topology(
      g, McType::kAsymmetric, ml,
      Topology({Edge(0, 1), Edge(1, 2), Edge(2, 3)})));
}

TEST(Validation, AsymmetricDegenerateCases) {
  const graph::Graph g = graph::line(4);
  // No receivers: empty topology is the only valid one.
  MemberList senders_only;
  senders_only.join(0, MemberRole::kSender);
  senders_only.join(1, MemberRole::kSender);
  EXPECT_TRUE(
      is_valid_topology(g, McType::kAsymmetric, senders_only, Topology{}));
  EXPECT_FALSE(is_valid_topology(g, McType::kAsymmetric, senders_only,
                                 Topology({Edge(0, 1)})));
  // A lone node that both sends and receives.
  MemberList lone;
  lone.join(2, MemberRole::kBoth);
  EXPECT_TRUE(is_valid_topology(g, McType::kAsymmetric, lone, Topology{}));
}

TEST(ContactNode, PicksNearestTreeNode) {
  const graph::Graph g = graph::line(6);
  const MemberList ml = make_members(
      {{0, MemberRole::kReceiver}, {2, MemberRole::kReceiver}});
  const Topology tree({Edge(0, 1), Edge(1, 2)});
  EXPECT_EQ(contact_node(g, ml, tree, 5), 2);
  EXPECT_EQ(contact_node(g, ml, tree, 0), 0);  // on-tree source
}

TEST(ContactNode, SingleReceiverIsItsOwnContact) {
  const graph::Graph g = graph::line(4);
  const MemberList ml = make_members({{3, MemberRole::kReceiver}});
  EXPECT_EQ(contact_node(g, ml, Topology{}, 0), 3);
}

TEST(ContactNode, UnreachableYieldsInvalid) {
  graph::Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  const MemberList ml = make_members(
      {{2, MemberRole::kReceiver}, {3, MemberRole::kReceiver}});
  const Topology tree({Edge(2, 3)});
  EXPECT_EQ(contact_node(g, ml, tree, 0), graph::kInvalidNode);
}

}  // namespace
}  // namespace dgmc::mc
