#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace dgmc::graph {
namespace {

TEST(Regular, LineRingStarGridComplete) {
  EXPECT_EQ(line(5).link_count(), 4);
  EXPECT_EQ(ring(5).link_count(), 5);
  EXPECT_EQ(star(5).link_count(), 4);
  EXPECT_EQ(grid(3, 4).node_count(), 12);
  EXPECT_EQ(grid(3, 4).link_count(), 3 * 3 + 2 * 4);
  EXPECT_EQ(complete(5).link_count(), 10);
  for (const Graph& g :
       {line(5), ring(5), star(5), grid(3, 4), complete(5)}) {
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Waxman, ProducesConnectedGraphsAcrossSizes) {
  util::RngStream rng(1);
  for (int n : {5, 20, 60, 120}) {
    const Graph g = waxman(n, WaxmanParams{}, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_TRUE(is_connected(g)) << "n=" << n;
    // Connected ⇒ at least a spanning tree's worth of links.
    EXPECT_GE(g.link_count(), n - 1);
  }
}

TEST(Waxman, DeterministicGivenSeed) {
  util::RngStream a(7), b(7);
  const Graph ga = waxman(40, WaxmanParams{}, a);
  const Graph gb = waxman(40, WaxmanParams{}, b);
  ASSERT_EQ(ga.link_count(), gb.link_count());
  for (LinkId i = 0; i < ga.link_count(); ++i) {
    EXPECT_EQ(ga.link(i).u, gb.link(i).u);
    EXPECT_EQ(ga.link(i).v, gb.link(i).v);
    EXPECT_DOUBLE_EQ(ga.link(i).delay, gb.link(i).delay);
  }
}

TEST(Waxman, HigherAlphaDenser) {
  util::RngStream a(3), b(3);
  WaxmanParams sparse;
  sparse.alpha = 0.1;
  WaxmanParams dense;
  dense.alpha = 0.9;
  const Graph gs = waxman(60, sparse, a);
  const Graph gd = waxman(60, dense, b);
  EXPECT_LT(gs.link_count(), gd.link_count());
}

TEST(Waxman, EuclideanCostsArePositive) {
  util::RngStream rng(5);
  WaxmanParams p;
  p.euclidean_costs = true;
  const Graph g = waxman(30, p, rng);
  for (const Link& l : g.links()) {
    EXPECT_GT(l.cost, 0.0);
    EXPECT_GT(l.delay, 0.0);
  }
}

TEST(RandomConnected, MeetsTargetDegreeApproximately) {
  util::RngStream rng(9);
  const int n = 100;
  const double target = 4.0;
  const Graph g = random_connected(n, target, rng);
  EXPECT_TRUE(is_connected(g));
  const double avg_degree = 2.0 * g.link_count() / n;
  EXPECT_NEAR(avg_degree, target, 0.5);
}

TEST(RandomConnected, NoParallelLinksOrSelfLoops) {
  util::RngStream rng(10);
  const Graph g = random_connected(50, 5.0, rng);
  for (const Link& l : g.links()) EXPECT_NE(l.u, l.v);
  // add_link enforces no parallels; double-check via find_link identity.
  for (LinkId i = 0; i < g.link_count(); ++i) {
    EXPECT_EQ(g.find_link(g.link(i).u, g.link(i).v), i);
  }
}

TEST(RandomConnected, SmallestSupportedSize) {
  util::RngStream rng(2);
  const Graph g = random_connected(2, 2.0, rng);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace dgmc::graph
