#include "check/executor.hpp"

#include <set>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"

#include "check/scenario.hpp"

namespace dgmc::check {
namespace {

const ScenarioSpec& spec(const char* name) {
  const ScenarioSpec* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

TEST(CheckScenario, CatalogLookup) {
  EXPECT_FALSE(scenarios().empty());
  EXPECT_NE(find_scenario("triangle-join-leave"), nullptr);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_EQ(spec("triangle-join-leave").mcs(), std::vector<mc::McId>{1});
  EXPECT_EQ(spec("diamond-two-mc").mcs(), (std::vector<mc::McId>{1, 2}));
}

TEST(CheckExecutor, InjectionIsFirstEnabledAction) {
  Executor exec(spec("triangle-join-leave"));
  const auto& acts = exec.enabled();
  ASSERT_FALSE(acts.empty());
  EXPECT_EQ(acts[0].kind, Executor::Action::Kind::kInjection);
  EXPECT_EQ(acts[0].injection, 0u);
  EXPECT_EQ(exec.injections_fired(), 0u);
  exec.step(0);
  EXPECT_EQ(exec.injections_fired(), 1u);
  EXPECT_EQ(exec.depth(), 1u);
}

TEST(CheckExecutor, PerOriginFifoOnlyLowestSeqDeliverable) {
  // Fire all injections; once several LSAs from the same origin are in
  // flight to the same receiver, only the lowest seq may be enabled.
  Executor exec(spec("triangle-join-leave"));
  while (exec.injections_fired() < spec("triangle-join-leave").injections.size()) {
    exec.step(0);
  }
  for (int steps = 0; steps < 200 && !exec.done(); ++steps) {
    std::map<std::pair<std::int32_t, std::int32_t>, std::uint32_t> seen_seq;
    for (const auto& a : exec.enabled()) {
      if (a.kind != Executor::Action::Kind::kEvent) continue;
      if (a.tag.kind != des::EventTag::Kind::kDelivery) continue;
      const auto key = std::make_pair(a.tag.node, a.tag.peer);
      auto [it, inserted] = seen_seq.emplace(key, a.tag.seq);
      // At most one enabled delivery per (receiver, origin) in lossless
      // mode, and it must be the minimum over the whole pending set.
      EXPECT_TRUE(inserted) << "two enabled deliveries for one pair";
      (void)it;
    }
    for (const auto& p : exec.network().scheduler().pending_events()) {
      if (p.tag.kind != des::EventTag::Kind::kDelivery) continue;
      const auto key = std::make_pair(p.tag.node, p.tag.peer);
      auto it = seen_seq.find(key);
      ASSERT_NE(it, seen_seq.end());
      EXPECT_LE(it->second, p.tag.seq);
    }
    exec.step(0);
  }
  EXPECT_TRUE(exec.done());
}

TEST(CheckExecutor, DeterministicFingerprintsAcrossRuns) {
  std::vector<std::uint64_t> fps1, fps2;
  for (auto* fps : {&fps1, &fps2}) {
    Executor exec(spec("triangle-2join"));
    fps->push_back(exec.fingerprint());
    while (!exec.done()) {
      exec.step(0);
      fps->push_back(exec.fingerprint());
    }
  }
  EXPECT_EQ(fps1, fps2);
  // A run that actually progresses changes the fingerprint.
  std::set<std::uint64_t> distinct(fps1.begin(), fps1.end());
  EXPECT_GT(distinct.size(), fps1.size() / 2);
}

TEST(CheckExecutor, DifferentScheduleDifferentFingerprint) {
  Executor a(spec("triangle-2join"));
  Executor b(spec("triangle-2join"));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  a.step(0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(CheckExecutor, CleanRunSatisfiesAllOracles) {
  Executor exec(spec("triangle-join-leave"));
  EXPECT_FALSE(exec.check().has_value());
  while (!exec.done()) {
    exec.step(0);
    const auto v = exec.check();
    EXPECT_FALSE(v.has_value()) << v->oracle << ": " << v->detail;
  }
  EXPECT_TRUE(exec.done());
}

TEST(CheckExecutor, DroppedDependencyInjectionIsNoOp) {
  // The minimizer may drop a join that a later leave depended on; the
  // leave must degrade to a no-op instead of asserting.
  ScenarioSpec s = spec("triangle-join-leave");
  s.injections.erase(s.injections.begin() + 1);  // drop join at 1
  Executor exec(s);
  while (!exec.done()) {
    exec.step(0);
    const auto v = exec.check();
    EXPECT_FALSE(v.has_value()) << v->oracle << ": " << v->detail;
  }
}

TEST(CheckExecutor, DescribeLabelsActions) {
  Executor exec(spec("triangle-join-leave"));
  EXPECT_EQ(exec.describe(exec.enabled()[0]), "inject join mc=1 at=0");
  exec.step(0);
  bool saw_compute_or_delivery = false;
  for (const auto& a : exec.enabled()) {
    const std::string label = exec.describe(a);
    if (label.find("finish-computation") != std::string::npos ||
        label.find("deliver") != std::string::npos) {
      saw_compute_or_delivery = true;
    }
  }
  EXPECT_TRUE(saw_compute_or_delivery);
}

}  // namespace
}  // namespace dgmc::check
