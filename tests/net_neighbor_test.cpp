// Heartbeat/neighbor state machine, driven deterministically under
// des::Scheduler — NeighborTable only knows rt::Executor, so the same
// object code the socket backend runs is tested here on a simulated
// clock with exact timings (no wall-clock flakiness).
#include <gtest/gtest.h>

#include <vector>

#include "des/scheduler.hpp"
#include "net/neighbor.hpp"

namespace dgmc::net {
namespace {

struct Hello {
  graph::LinkId link;
  std::uint32_t seq;
  std::uint32_t echo;
  rt::Time hold;
};

/// Two tables wired back to back over a lossy in-sim "wire": each
/// side's send_hello delivers to the other after `delay`, unless the
/// test's drop window says otherwise.
struct Harness {
  des::Scheduler sched;
  NeighborTable::Config config;
  std::vector<Hello> sent_a, sent_b;
  std::vector<graph::LinkId> downs_a, ups_a, downs_b, ups_b;
  std::unique_ptr<NeighborTable> a, b;
  rt::Time delay = 1e-3;
  bool drop_a_to_b = false;  // HELLOs from a are lost
  bool drop_b_to_a = false;

  explicit Harness(NeighborTable::Config cfg) : config(cfg) {
    NeighborTable::Hooks ha;
    ha.send_hello = [this](graph::LinkId link, std::uint32_t seq,
                           std::uint32_t echo, rt::Time hold) {
      sent_a.push_back({link, seq, echo, hold});
      if (drop_a_to_b) return;
      sched.schedule_after(delay, [this, link, seq, echo, hold] {
        b->on_hello(link, seq, echo, hold);
      });
    };
    ha.link_down = [this](graph::LinkId l) { downs_a.push_back(l); };
    ha.link_up = [this](graph::LinkId l) { ups_a.push_back(l); };
    a = std::make_unique<NeighborTable>(sched, 0, std::vector<graph::LinkId>{0},
                                        config, std::move(ha));
    NeighborTable::Hooks hb;
    hb.send_hello = [this](graph::LinkId link, std::uint32_t seq,
                           std::uint32_t echo, rt::Time hold) {
      sent_b.push_back({link, seq, echo, hold});
      if (drop_b_to_a) return;
      sched.schedule_after(delay, [this, link, seq, echo, hold] {
        a->on_hello(link, seq, echo, hold);
      });
    };
    hb.link_down = [this](graph::LinkId l) { downs_b.push_back(l); };
    hb.link_up = [this](graph::LinkId l) { ups_b.push_back(l); };
    b = std::make_unique<NeighborTable>(sched, 1, std::vector<graph::LinkId>{0},
                                        config, std::move(hb));
    a->start();
    b->start();
  }

  void run_until(rt::Time t) { sched.run_until(t); }
};

NeighborTable::Config fast() {
  NeighborTable::Config cfg;
  cfg.hello_interval = 0.05;
  cfg.dead_interval = 0.5;
  return cfg;
}

TEST(NetNeighbor, LinksStartOptimisticallyUp) {
  Harness h(fast());
  EXPECT_TRUE(h.a->link_up(0));
  EXPECT_TRUE(h.b->link_up(0));
  EXPECT_FALSE(h.a->link_up(99));  // unknown link is never up
}

TEST(NetNeighbor, SteadyHeartbeatKeepsLinkUpForever) {
  Harness h(fast());
  h.run_until(10.0);
  EXPECT_TRUE(h.a->link_up(0));
  EXPECT_TRUE(h.b->link_up(0));
  EXPECT_TRUE(h.downs_a.empty());
  EXPECT_TRUE(h.downs_b.empty());
  // ~10s / 50ms = ~200 HELLOs each way.
  EXPECT_GE(h.a->hellos_sent(), 190u);
  EXPECT_GE(h.a->hellos_received(), 190u);
}

TEST(NetNeighbor, LossBelowDeadIntervalDoesNotFlap) {
  Harness h(fast());
  h.run_until(2.0);
  // Drop b's HELLOs for less than the dead interval (0.4 < 0.5): a
  // must not declare the link down.
  h.drop_b_to_a = true;
  h.run_until(2.4);
  h.drop_b_to_a = false;
  h.run_until(5.0);
  EXPECT_TRUE(h.a->link_up(0));
  EXPECT_TRUE(h.downs_a.empty());
  EXPECT_EQ(h.a->links_declared_down(), 0u);
}

TEST(NetNeighbor, SustainedSilenceDeclaresDownAndHelloRevives) {
  Harness h(fast());
  h.run_until(2.0);
  // Silence b → a entirely for well past the dead interval.
  h.drop_b_to_a = true;
  h.run_until(4.0);
  EXPECT_FALSE(h.a->link_up(0));
  ASSERT_EQ(h.downs_a.size(), 1u);
  EXPECT_EQ(h.downs_a[0], 0);
  // b still hears a, so b's side stays up (asymmetric loss).
  EXPECT_TRUE(h.b->link_up(0));
  // Heal: the first HELLO through brings the link back.
  h.drop_b_to_a = false;
  h.run_until(4.2);
  EXPECT_TRUE(h.a->link_up(0));
  ASSERT_EQ(h.ups_a.size(), 1u);
  EXPECT_EQ(h.a->links_declared_up(), 1u);
}

TEST(NetNeighbor, FlappingLinkReconvergesEachCycle) {
  Harness h(fast());
  for (int cycle = 0; cycle < 3; ++cycle) {
    const rt::Time base = 2.0 * cycle;
    h.run_until(base + 1.0);
    EXPECT_TRUE(h.a->link_up(0)) << "cycle " << cycle;
    h.drop_b_to_a = true;
    h.run_until(base + 1.8);
    EXPECT_FALSE(h.a->link_up(0)) << "cycle " << cycle;
    h.drop_b_to_a = false;
  }
  h.run_until(7.0);
  EXPECT_TRUE(h.a->link_up(0));
  EXPECT_EQ(h.a->links_declared_down(), 3u);
  EXPECT_EQ(h.a->links_declared_up(), 3u);
}

TEST(NetNeighbor, RttEwmaTracksRoundTrip) {
  Harness h(fast());
  EXPECT_LT(h.a->rtt(0), 0.0);  // no sample yet
  h.run_until(3.0);
  // The echoed-hold accounting must recover the pure two-way delay
  // (2 * 1ms), not delay + hold time at the peer.
  EXPECT_NEAR(h.a->rtt(0), 2e-3, 2e-4);
  EXPECT_NEAR(h.b->rtt(0), 2e-3, 2e-4);
}

TEST(NetNeighbor, RttForgottenAcrossOutage) {
  Harness h(fast());
  h.run_until(2.0);
  EXPECT_GT(h.a->rtt(0), 0.0);
  h.drop_b_to_a = true;
  h.run_until(4.0);
  EXPECT_FALSE(h.a->link_up(0));
  EXPECT_LT(h.a->rtt(0), 0.0);  // stale samples dropped on link-down
  h.drop_b_to_a = false;
  h.run_until(6.0);
  EXPECT_NEAR(h.a->rtt(0), 2e-3, 2e-4);  // re-learned after revival
}

TEST(NetNeighbor, HelloOnUnknownLinkIsIgnored) {
  Harness h(fast());
  h.a->on_hello(42, 1, 0, 0.0);
  EXPECT_FALSE(h.a->link_up(42));
  h.run_until(1.0);
  EXPECT_TRUE(h.a->link_up(0));
}

TEST(NetNeighbor, StopCancelsHeartbeat) {
  Harness h(fast());
  h.run_until(1.0);
  const std::uint64_t sent = h.a->hellos_sent();
  h.a->stop();
  h.b->stop();
  h.run_until(3.0);
  EXPECT_EQ(h.a->hellos_sent(), sent);
  EXPECT_TRUE(h.sched.empty());
}

}  // namespace
}  // namespace dgmc::net
