// Tests for the declarative soak/churn spec (sim/spec.hpp): round-trip
// parse/serialize, malformed-input rejection with line numbers, and the
// ChurnEngine's determinism and stream-decoupling guarantees.
#include "sim/spec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

namespace dgmc::sim {
namespace {

const char* kFullSpec = R"(# churn-at-scale exemplar
name storm
network waxman 24 seed=7
delay uniform 1ms
timing tc=25ms perhop=4us
option algorithm=incremental resync=on dualdetect=off reliable=on
overload inflight=4 queue=64 dedupcap=256
soak duration=30s phases=3 trials=2 seed=99
watchdog deadline=10s
budget dedup=1024 pending=2048 rss_mb=128
fault loss=0.01 jitter=2ms
fault burst pgb=0.01 pbg=0.2 lossgood=0 lossbad=0.8
churn flashcrowd mc=1 start=1s members=10 alpha=1.5 scale=5ms
churn poisson mc=2 start=2s members=4 events=6 gap=1s
churn drift links=3 period=250ms sigma=0.2 down=2.0 up=1.5
churn rolling start=5s interval=4s downtime=500ms count=3
)";

SoakSpec parse_ok(const std::string& text) {
  auto result = SoakSpec::parse(text);
  const auto* err = std::get_if<SpecError>(&result);
  EXPECT_EQ(err, nullptr) << (err != nullptr
                                  ? "line " + std::to_string(err->line) +
                                        ": " + err->message
                                  : "");
  return std::get<SoakSpec>(result);
}

int parse_error_line(const std::string& text) {
  auto result = SoakSpec::parse(text);
  const auto* err = std::get_if<SpecError>(&result);
  EXPECT_NE(err, nullptr) << "expected a parse error";
  return err != nullptr ? err->line : -1;
}

std::vector<std::string> event_strings(const std::vector<SoakEvent>& events) {
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const auto& ev : events) out.push_back(to_string(ev));
  return out;
}

TEST(SoakSpec, ParsesEveryStatementKind) {
  const SoakSpec spec = parse_ok(kFullSpec);
  EXPECT_EQ(spec.name, "storm");
  EXPECT_EQ(spec.topo, SoakSpec::Topo::kWaxman);
  EXPECT_EQ(spec.network_size, 24);
  EXPECT_EQ(spec.topo_seed, 7u);
  ASSERT_TRUE(spec.uniform_delay.has_value());
  EXPECT_DOUBLE_EQ(*spec.uniform_delay, 1e-3);
  EXPECT_DOUBLE_EQ(spec.tc, 25e-3);
  EXPECT_DOUBLE_EQ(spec.per_hop, 4e-6);
  EXPECT_TRUE(spec.incremental);
  EXPECT_TRUE(spec.resync);
  EXPECT_FALSE(spec.dual_detect);
  EXPECT_TRUE(spec.reliable);
  EXPECT_EQ(spec.overload.max_inflight_per_link, 4u);
  EXPECT_EQ(spec.overload.max_queue_per_link, 64u);
  EXPECT_EQ(spec.overload.max_dedup_ahead, 256u);
  EXPECT_DOUBLE_EQ(spec.duration, 30.0);
  EXPECT_EQ(spec.phases, 3);
  EXPECT_EQ(spec.trials, 2);
  EXPECT_EQ(spec.soak_seed, 99u);
  EXPECT_DOUBLE_EQ(spec.watchdog_deadline, 10.0);
  EXPECT_EQ(spec.budgets.dedup_backlog, 1024u);
  EXPECT_EQ(spec.budgets.pending_retransmits, 2048u);
  EXPECT_DOUBLE_EQ(spec.budgets.rss_growth_mb, 128.0);
  EXPECT_DOUBLE_EQ(spec.faults.iid_loss, 0.01);
  EXPECT_DOUBLE_EQ(spec.faults.max_extra_delay, 2e-3);
  EXPECT_TRUE(spec.faults.use_burst);
  EXPECT_DOUBLE_EQ(spec.faults.burst.loss_bad, 0.8);
  ASSERT_EQ(spec.churn.size(), 4u);
  EXPECT_EQ(spec.churn[0].kind, ChurnProgram::Kind::kFlashCrowd);
  EXPECT_EQ(spec.churn[1].kind, ChurnProgram::Kind::kPoisson);
  EXPECT_EQ(spec.churn[2].kind, ChurnProgram::Kind::kDrift);
  EXPECT_EQ(spec.churn[3].kind, ChurnProgram::Kind::kRolling);
  EXPECT_EQ(spec.mcs(), (std::vector<mc::McId>{1, 2}));
}

TEST(SoakSpec, SerializeRoundTripsToIdenticalSpec) {
  const SoakSpec spec = parse_ok(kFullSpec);
  const std::string canonical = spec.serialize();
  const SoakSpec reparsed = parse_ok(canonical);
  // Canonical form is a fixed point: serializing the reparse gives the
  // same text, which pins every field (serialize emits them all).
  EXPECT_EQ(reparsed.serialize(), canonical);
  // And the behavioral expansion is identical.
  EXPECT_EQ(event_strings(ChurnEngine::expand_all(spec, spec.build_graph(),
                                                  spec.soak_seed)),
            event_strings(ChurnEngine::expand_all(
                reparsed, reparsed.build_graph(), reparsed.soak_seed)));
}

TEST(SoakSpec, DefaultsRoundTrip) {
  const SoakSpec spec = parse_ok("name tiny\nnetwork ring 6\n");
  const std::string canonical = spec.serialize();
  EXPECT_EQ(parse_ok(canonical).serialize(), canonical);
}

TEST(SoakSpec, RejectsMalformedInputWithLineNumbers) {
  // Unknown statement.
  EXPECT_EQ(parse_error_line("name x\nbogus statement\n"), 2);
  // Missing topology size.
  EXPECT_EQ(parse_error_line("network waxman\n"), 1);
  // Bad number.
  EXPECT_EQ(parse_error_line("network ring banana\n"), 1);
  // Drift hysteresis must satisfy up < down.
  EXPECT_EQ(parse_error_line("network ring 8\n"
                             "churn drift links=2 period=1s sigma=0.1 "
                             "down=1.0 up=1.5\n"),
            2);
  // Flash crowd larger than the network.
  EXPECT_EQ(parse_error_line("network ring 4\n"
                             "churn flashcrowd mc=1 start=0s members=10 "
                             "alpha=1.5 scale=1ms\n"),
            2);
  // Two membership programs on one MC id.
  const int line = parse_error_line(
      "network ring 12\n"
      "churn flashcrowd mc=1 start=0s members=3 alpha=1.5 scale=1ms\n"
      "churn poisson mc=1 start=1s members=3 events=2 gap=1s\n");
  EXPECT_GT(line, 0);
  // Unknown key inside a statement.
  EXPECT_EQ(parse_error_line("soak duration=10s warp=9\n"), 1);
}

TEST(ChurnEngine, ExpansionIsDeterministicPerSeed) {
  const SoakSpec spec = parse_ok(kFullSpec);
  const graph::Graph g = spec.build_graph();
  const auto a = ChurnEngine::expand_all(spec, g, 99);
  const auto b = ChurnEngine::expand_all(spec, g, 99);
  EXPECT_EQ(event_strings(a), event_strings(b));
  EXPECT_FALSE(a.empty());
  const auto c = ChurnEngine::expand_all(spec, g, 100);
  EXPECT_NE(event_strings(a), event_strings(c));
}

TEST(ChurnEngine, AppendingAProgramDoesNotPerturbEarlierOnes) {
  // Program i draws from fork(i) of the churn stream, so adding a
  // program at the end must leave every earlier program's events
  // bit-identical (the FaultInjector decoupling, applied to churn).
  const std::string base =
      "name decouple\nnetwork ring 16\nsoak duration=20s phases=2 trials=1 "
      "seed=5\n"
      "churn flashcrowd mc=1 start=1s members=6 alpha=1.5 scale=10ms\n";
  const std::string extended =
      base + "churn rolling start=4s interval=3s downtime=200ms count=4\n";
  const SoakSpec a = parse_ok(base);
  const SoakSpec b = parse_ok(extended);
  const graph::Graph g = a.build_graph();
  auto only_joins = [](const std::vector<SoakEvent>& events) {
    std::vector<std::string> out;
    for (const auto& ev : events) {
      if (ev.kind == SoakEvent::Kind::kJoin ||
          ev.kind == SoakEvent::Kind::kLeave) {
        out.push_back(to_string(ev));
      }
    }
    return out;
  };
  EXPECT_EQ(only_joins(ChurnEngine::expand_all(a, g, a.soak_seed)),
            only_joins(ChurnEngine::expand_all(b, g, b.soak_seed)));
}

TEST(ChurnEngine, PhaseWindowsConcatenateToExpandAll) {
  const SoakSpec spec = parse_ok(kFullSpec);
  const graph::Graph g = spec.build_graph();
  ChurnEngine engine(spec, g, spec.soak_seed);
  std::vector<SoakEvent> windowed;
  const int phases = 5;  // deliberately different from spec.phases
  for (int i = 0; i < phases; ++i) {
    const double from = spec.duration * i / phases;
    const double to =
        i + 1 == phases ? spec.duration : spec.duration * (i + 1) / phases;
    const auto chunk = engine.phase_events(from, to);
    for (const auto& ev : chunk) {
      EXPECT_GE(ev.at, from);
      EXPECT_LT(ev.at, to);
    }
    windowed.insert(windowed.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(event_strings(windowed),
            event_strings(
                ChurnEngine::expand_all(spec, g, spec.soak_seed)));
}

TEST(ChurnEngine, DriftEmitsHysteresisFlapPairs) {
  // A violent drift program must produce fail/restore events, and they
  // must alternate per link (hysteresis: no double-fail, no
  // double-restore).
  const SoakSpec spec = parse_ok(
      "name drifty\nnetwork ring 8\nsoak duration=60s phases=1 trials=1 "
      "seed=3\n"
      "churn drift links=4 period=100ms sigma=0.8 down=1.6 up=1.2\n");
  const graph::Graph g = spec.build_graph();
  const auto events = ChurnEngine::expand_all(spec, g, spec.soak_seed);
  ASSERT_FALSE(events.empty());
  std::map<graph::LinkId, SoakEvent::Kind> last;
  for (const auto& ev : events) {
    ASSERT_TRUE(ev.kind == SoakEvent::Kind::kFail ||
                ev.kind == SoakEvent::Kind::kRestore);
    auto it = last.find(ev.link);
    if (it != last.end()) {
      EXPECT_NE(it->second, ev.kind)
          << "link " << ev.link << " repeated " << to_string(ev);
    } else {
      EXPECT_EQ(ev.kind, SoakEvent::Kind::kFail)
          << "first event for a link must be a failure";
    }
    last[ev.link] = ev.kind;
  }
}

}  // namespace
}  // namespace dgmc::sim
