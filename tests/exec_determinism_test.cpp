// Determinism regression layer for the parallel execution engine: the
// experiment sweep and both parallel exploration modes must produce
// bit-identical output at DGMC_JOBS = 1, 2 and 8 (the contract in
// DESIGN.md §8). Scenario sizes are kept small so the suite also runs
// under TSan at acceptable cost.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "check/explorer.hpp"
#include "sim/experiment.hpp"

namespace {

constexpr int kJobCounts[] = {1, 2, 8};

// --- experiment sweep ------------------------------------------------

dgmc::sim::ExperimentConfig small_sweep() {
  dgmc::sim::ExperimentConfig cfg;
  cfg.network_sizes = {12, 16};
  cfg.graphs_per_size = 3;
  cfg.events = 4;
  cfg.initial_members = 4;
  cfg.seed = 42;
  return cfg;
}

TEST(ExecDeterminism, ExperimentSweepIdenticalAcrossJobCounts) {
  dgmc::sim::ExperimentConfig cfg = small_sweep();
  cfg.jobs = 1;
  const std::string baseline =
      dgmc::sim::serialize_points(dgmc::sim::run_experiment(cfg));
  EXPECT_FALSE(baseline.empty());
  for (int jobs : kJobCounts) {
    cfg.jobs = jobs;
    const std::string got =
        dgmc::sim::serialize_points(dgmc::sim::run_experiment(cfg));
    EXPECT_EQ(got, baseline) << "jobs=" << jobs;
  }
}

TEST(ExecDeterminism, ExperimentSweepRepeatableAtSameJobCount) {
  dgmc::sim::ExperimentConfig cfg = small_sweep();
  cfg.jobs = 8;
  const std::string a =
      dgmc::sim::serialize_points(dgmc::sim::run_experiment(cfg));
  const std::string b =
      dgmc::sim::serialize_points(dgmc::sim::run_experiment(cfg));
  EXPECT_EQ(a, b);
}

// --- state-space search ----------------------------------------------

dgmc::check::ScenarioSpec spec(const char* name, bool break_accept = false) {
  const dgmc::check::ScenarioSpec* s = dgmc::check::find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  dgmc::check::ScenarioSpec out = *s;
  out.params.dgmc.accept_stale_proposals = break_accept;
  return out;
}

// Full serialization of a search result, so "identical" means every
// statistic, the violation, and the trace — not a summary.
std::string serialize(const dgmc::check::SearchResult& r) {
  std::ostringstream os;
  os << "transitions=" << r.stats.transitions
     << " executions=" << r.stats.executions
     << " states=" << r.stats.states_seen << " pruned=" << r.stats.pruned
     << " cutoffs=" << r.stats.depth_cutoffs
     << " max_depth=" << r.stats.max_depth_reached
     << " exhaustive=" << r.exhaustive;
  if (r.violation.has_value()) {
    os << " violation=" << r.violation->oracle << ":" << r.violation->detail;
  }
  os << " trace=";
  for (std::uint32_t c : r.trace.choices) os << c << ",";
  return os.str();
}

TEST(ExecDeterminism, RandomParallelCleanIdenticalAcrossJobCounts) {
  const dgmc::check::ScenarioSpec s = spec("triangle-join-leave");
  dgmc::check::SearchLimits limits;
  limits.max_depth = 40;
  limits.walks = 60;
  limits.seed = 7;
  const std::string baseline =
      serialize(dgmc::check::explore_random_parallel(s, limits, 1));
  EXPECT_EQ(baseline.find("violation="), std::string::npos) << baseline;
  for (int jobs : kJobCounts) {
    const std::string got = serialize(
        dgmc::check::explore_random_parallel(s, limits, jobs));
    EXPECT_EQ(got, baseline) << "jobs=" << jobs;
  }
}

TEST(ExecDeterminism, RandomParallelViolationIdenticalAndReplays) {
  const dgmc::check::ScenarioSpec broken =
      spec("triangle-join-leave", /*break_accept=*/true);
  dgmc::check::SearchLimits limits;
  limits.max_depth = 60;
  limits.walks = 300;
  limits.seed = 1;
  const dgmc::check::SearchResult first =
      dgmc::check::explore_random_parallel(broken, limits, 1);
  ASSERT_TRUE(first.violation.has_value());
  const std::string baseline_violation =
      first.violation->oracle + ":" + first.violation->detail;
  const auto baseline_trace = first.trace.choices;
  for (int jobs : kJobCounts) {
    const dgmc::check::SearchResult r =
        dgmc::check::explore_random_parallel(broken, limits, jobs);
    ASSERT_TRUE(r.violation.has_value()) << "jobs=" << jobs;
    EXPECT_EQ(r.violation->oracle + ":" + r.violation->detail,
              baseline_violation)
        << "jobs=" << jobs;
    EXPECT_EQ(r.trace.choices, baseline_trace) << "jobs=" << jobs;
  }

  const dgmc::check::ReplayResult rr = dgmc::check::replay(broken, first.trace);
  ASSERT_FALSE(rr.divergence.has_value()) << *rr.divergence;
  ASSERT_TRUE(rr.violation.has_value());
  EXPECT_EQ(rr.violation->oracle, first.violation->oracle);
}

TEST(ExecDeterminism, DfsParallelCleanIdenticalAcrossJobCounts) {
  const dgmc::check::ScenarioSpec s = spec("triangle-join-leave");
  dgmc::check::SearchLimits limits;
  limits.max_depth = 9;
  const std::string baseline =
      serialize(dgmc::check::explore_dfs_parallel(s, limits, 1));
  EXPECT_EQ(baseline.find("violation="), std::string::npos) << baseline;
  for (int jobs : kJobCounts) {
    const std::string got =
        serialize(dgmc::check::explore_dfs_parallel(s, limits, jobs));
    EXPECT_EQ(got, baseline) << "jobs=" << jobs;
  }
}

TEST(ExecDeterminism, DfsParallelFindsSameViolationAsSerialDfs) {
  const dgmc::check::ScenarioSpec broken =
      spec("triangle-join-leave", /*break_accept=*/true);
  dgmc::check::SearchLimits limits;
  limits.max_depth = 14;
  const dgmc::check::SearchResult serial =
      dgmc::check::explore_dfs(broken, limits);
  ASSERT_TRUE(serial.violation.has_value());

  dgmc::check::SearchResult first;
  for (int jobs : kJobCounts) {
    const dgmc::check::SearchResult r =
        dgmc::check::explore_dfs_parallel(broken, limits, jobs);
    ASSERT_TRUE(r.violation.has_value()) << "jobs=" << jobs;
    EXPECT_EQ(r.violation->oracle, serial.violation->oracle)
        << "jobs=" << jobs;
    if (jobs == 1) {
      first = r;
    } else {
      // Identical counterexample (trace and detail) at every width.
      EXPECT_EQ(r.trace.choices, first.trace.choices) << "jobs=" << jobs;
      EXPECT_EQ(r.violation->detail, first.violation->detail)
          << "jobs=" << jobs;
    }
  }

  const dgmc::check::ReplayResult rr = dgmc::check::replay(broken, first.trace);
  ASSERT_FALSE(rr.divergence.has_value()) << *rr.divergence;
  ASSERT_TRUE(rr.violation.has_value());
  EXPECT_EQ(rr.violation->oracle, first.violation->oracle);
}

TEST(ExecDeterminism, FrontierWidthIndependentOfJobCount) {
  // Raising frontier_width changes the decomposition (more, smaller
  // subtree tasks) but the engine must still be internally consistent:
  // same result at any job count for each width.
  const dgmc::check::ScenarioSpec s = spec("triangle-2join");
  for (std::size_t width : {std::size_t{8}, std::size_t{64}}) {
    dgmc::check::SearchLimits limits;
    limits.max_depth = 8;
    limits.frontier_width = width;
    const std::string baseline =
        serialize(dgmc::check::explore_dfs_parallel(s, limits, 1));
    for (int jobs : kJobCounts) {
      EXPECT_EQ(serialize(dgmc::check::explore_dfs_parallel(s, limits, jobs)),
                baseline)
          << "width=" << width << " jobs=" << jobs;
    }
  }
}

}  // namespace
