// Seeded mutation fuzzing of the wire codec: every decode_* must
// either return a value or return nullopt — never crash, assert or
// read out of bounds (the asan lane runs this under sanitizers via the
// `fuzz` label). Mutations are derived from valid encodings (bit
// flips, byte overwrites, truncations, splices) because random bytes
// alone rarely get past the type byte.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "util/rng.hpp"

namespace dgmc::core {
namespace {

using Bytes = std::vector<std::uint8_t>;

McLsa sample_lsa(util::RngStream& rng) {
  McLsa lsa;
  lsa.source = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  lsa.event = static_cast<McEventType>(rng.uniform_int(0, 3));
  lsa.mc = static_cast<mc::McId>(rng.uniform_int(0, 100));
  lsa.mc_type = rng.bernoulli(0.5) ? mc::McType::kSymmetric
                                   : mc::McType::kReceiverOnly;
  lsa.join_role = static_cast<mc::MemberRole>(rng.uniform_int(0, 3));
  lsa.link =
      rng.bernoulli(0.5) ? graph::kInvalidLink
                         : static_cast<graph::LinkId>(rng.uniform_int(0, 30));
  VectorTimestamp t(static_cast<graph::NodeId>(rng.uniform_int(1, 8)));
  for (int i = 0; i < 6; ++i) {
    t.increment(static_cast<graph::NodeId>(rng.index(t.size())));
  }
  lsa.stamp = t;
  if (rng.bernoulli(0.7)) {
    trees::Topology topo;
    const int edges = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < edges; ++i) {
      const auto a = static_cast<graph::NodeId>(rng.uniform_int(0, 6));
      const auto b = static_cast<graph::NodeId>(rng.uniform_int(0, 6));
      if (a != b) topo.add(graph::Edge(a, b));
    }
    lsa.proposal = topo;
  }
  return lsa;
}

McSync sample_sync(util::RngStream& rng) {
  McSync sync;
  sync.source = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  sync.mc = static_cast<mc::McId>(rng.uniform_int(0, 100));
  sync.mc_type = mc::McType::kSymmetric;
  const int entries = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < entries; ++i) {
    McSyncEntry e;
    e.node = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
    e.events_heard = static_cast<std::uint32_t>(rng.uniform_int(0, 9));
    e.member_event_index = static_cast<std::uint32_t>(rng.uniform_int(0, 9));
    e.is_member = rng.bernoulli(0.5);
    e.role = mc::MemberRole::kBoth;
    sync.entries.push_back(e);
  }
  sync.c = VectorTimestamp(static_cast<graph::NodeId>(rng.uniform_int(1, 8)));
  sync.c_origin = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  return sync;
}

/// Decoding must not crash; if it succeeds, re-encoding the decoded
/// value must itself be decodable (the codec never emits garbage).
void probe(const Bytes& bytes) {
  if (const auto lsa = decode_mc_lsa(bytes)) {
    EXPECT_TRUE(decode_mc_lsa(encode(*lsa)).has_value());
  }
  if (const auto ad = decode_link_event(bytes)) {
    EXPECT_TRUE(decode_link_event(encode(*ad)).has_value());
  }
  if (const auto sync = decode_mc_sync(bytes)) {
    EXPECT_TRUE(decode_mc_sync(encode(*sync)).has_value());
  }
  (void)peek_type(bytes);
}

Bytes mutate(Bytes bytes, util::RngStream& rng) {
  if (bytes.empty()) return bytes;
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // flip a bit
      const std::size_t i = rng.index(bytes.size());
      bytes[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      break;
    }
    case 1: {  // overwrite a byte
      bytes[rng.index(bytes.size())] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      break;
    }
    case 2:  // truncate
      bytes.resize(rng.index(bytes.size()));
      break;
    default: {  // duplicate a slice into the middle
      const std::size_t at = rng.index(bytes.size());
      const std::size_t len = rng.index(bytes.size() - at) + 1;
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
  }
  return bytes;
}

TEST(CodecFuzz, MutatedEncodingsNeverCrashDecode) {
  util::RngStream rng(20260806);
  for (int round = 0; round < 2000; ++round) {
    Bytes base;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        base = encode(sample_lsa(rng));
        break;
      case 1:
        base = encode(lsr::LinkEventAd{
            static_cast<graph::LinkId>(rng.uniform_int(0, 40)),
            rng.bernoulli(0.5)});
        break;
      default:
        base = encode(sample_sync(rng));
        break;
    }
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) base = mutate(base, rng);
    probe(base);
  }
}

TEST(CodecFuzz, ArbitraryBytesNeverCrashDecode) {
  util::RngStream rng(42);
  for (int round = 0; round < 2000; ++round) {
    Bytes bytes(rng.index(64));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    probe(bytes);
  }
}

TEST(CodecFuzz, AllPrefixesOfValidEncodingsRejectCleanly) {
  util::RngStream rng(7);
  for (int round = 0; round < 50; ++round) {
    const Bytes bytes = encode(sample_lsa(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const Bytes prefix(bytes.begin(),
                         bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_FALSE(decode_mc_lsa(prefix).has_value()) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace dgmc::core
