// Seeded mutation fuzzing of the wire codec: every decode_* must
// either return a value or return nullopt — never crash, assert or
// read out of bounds (the asan lane runs this under sanitizers via the
// `fuzz` label). Mutations are derived from valid encodings (bit
// flips, byte overwrites, truncations, splices) because random bytes
// alone rarely get past the type byte.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "net/frame.hpp"
#include "util/rng.hpp"

namespace dgmc::core {
namespace {

using Bytes = std::vector<std::uint8_t>;

McLsa sample_lsa(util::RngStream& rng) {
  McLsa lsa;
  lsa.source = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  lsa.event = static_cast<McEventType>(rng.uniform_int(0, 3));
  lsa.mc = static_cast<mc::McId>(rng.uniform_int(0, 100));
  lsa.mc_type = rng.bernoulli(0.5) ? mc::McType::kSymmetric
                                   : mc::McType::kReceiverOnly;
  lsa.join_role = static_cast<mc::MemberRole>(rng.uniform_int(0, 3));
  lsa.link =
      rng.bernoulli(0.5) ? graph::kInvalidLink
                         : static_cast<graph::LinkId>(rng.uniform_int(0, 30));
  VectorTimestamp t(static_cast<graph::NodeId>(rng.uniform_int(1, 8)));
  for (int i = 0; i < 6; ++i) {
    t.increment(static_cast<graph::NodeId>(rng.index(t.size())));
  }
  lsa.stamp = t;
  if (rng.bernoulli(0.7)) {
    trees::Topology topo;
    const int edges = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < edges; ++i) {
      const auto a = static_cast<graph::NodeId>(rng.uniform_int(0, 6));
      const auto b = static_cast<graph::NodeId>(rng.uniform_int(0, 6));
      if (a != b) topo.add(graph::Edge(a, b));
    }
    lsa.proposal = topo;
  }
  return lsa;
}

McLsaBatch sample_batch(util::RngStream& rng) {
  McLsaBatch batch;
  const int n = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < n; ++i) batch.lsas.push_back(sample_lsa(rng));
  return batch;
}

McSync sample_sync(util::RngStream& rng) {
  McSync sync;
  sync.source = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  sync.mc = static_cast<mc::McId>(rng.uniform_int(0, 100));
  sync.mc_type = mc::McType::kSymmetric;
  const int entries = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < entries; ++i) {
    McSyncEntry e;
    e.node = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
    e.events_heard = static_cast<std::uint32_t>(rng.uniform_int(0, 9));
    e.member_event_index = static_cast<std::uint32_t>(rng.uniform_int(0, 9));
    e.is_member = rng.bernoulli(0.5);
    e.role = mc::MemberRole::kBoth;
    sync.entries.push_back(e);
  }
  sync.c = VectorTimestamp(static_cast<graph::NodeId>(rng.uniform_int(1, 8)));
  sync.c_origin = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  return sync;
}

/// Decoding must not crash; if it succeeds, re-encoding the decoded
/// value must itself be decodable (the codec never emits garbage).
void probe(const Bytes& bytes) {
  if (const auto lsa = decode_mc_lsa(bytes)) {
    EXPECT_TRUE(decode_mc_lsa(encode(*lsa)).has_value());
  }
  if (const auto ad = decode_link_event(bytes)) {
    EXPECT_TRUE(decode_link_event(encode(*ad)).has_value());
  }
  if (const auto sync = decode_mc_sync(bytes)) {
    EXPECT_TRUE(decode_mc_sync(encode(*sync)).has_value());
  }
  if (const auto batch = decode_mc_lsa_batch(bytes)) {
    EXPECT_TRUE(decode_mc_lsa_batch(encode(*batch)).has_value());
  }
  (void)peek_type(bytes);
}

Bytes mutate(Bytes bytes, util::RngStream& rng) {
  if (bytes.empty()) return bytes;
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // flip a bit
      const std::size_t i = rng.index(bytes.size());
      bytes[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      break;
    }
    case 1: {  // overwrite a byte
      bytes[rng.index(bytes.size())] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      break;
    }
    case 2:  // truncate
      bytes.resize(rng.index(bytes.size()));
      break;
    default: {  // duplicate a slice into the middle
      const std::size_t at = rng.index(bytes.size());
      const std::size_t len = rng.index(bytes.size() - at) + 1;
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
  }
  return bytes;
}

TEST(CodecFuzz, MutatedEncodingsNeverCrashDecode) {
  util::RngStream rng(20260806);
  for (int round = 0; round < 2000; ++round) {
    Bytes base;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        base = encode(sample_lsa(rng));
        break;
      case 1:
        base = encode(lsr::LinkEventAd{
            static_cast<graph::LinkId>(rng.uniform_int(0, 40)),
            rng.bernoulli(0.5)});
        break;
      case 2:
        base = encode(sample_sync(rng));
        break;
      default:
        base = encode(sample_batch(rng));
        break;
    }
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) base = mutate(base, rng);
    probe(base);
  }
}

TEST(CodecFuzz, ArbitraryBytesNeverCrashDecode) {
  util::RngStream rng(42);
  for (int round = 0; round < 2000; ++round) {
    Bytes bytes(rng.index(64));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    probe(bytes);
  }
}

TEST(CodecFuzz, AllPrefixesOfValidEncodingsRejectCleanly) {
  util::RngStream rng(7);
  for (int round = 0; round < 50; ++round) {
    const Bytes bytes = encode(sample_lsa(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const Bytes prefix(bytes.begin(),
                         bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_FALSE(decode_mc_lsa(prefix).has_value()) << "cut=" << cut;
    }
  }
}

/// A forged length field far larger than the buffer must be rejected
/// without the decoder reserving the claimed size first (the caps are
/// checked against bytes actually present).
TEST(CodecFuzz, ForgedCountsRejectBeforeAllocating) {
  util::RngStream rng(99);
  McLsa lsa = sample_lsa(rng);
  Bytes bytes = encode(lsa);
  // The stamp length field sits after the fixed 16-byte prefix; write
  // the maximum the sanity cap admits with no data behind it.
  const std::uint32_t huge = 1u << 20;
  for (int i = 0; i < 4; ++i) {
    bytes[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  EXPECT_FALSE(decode_mc_lsa(bytes).has_value());
  // Oversized buffers are rejected outright.
  Bytes oversized = encode(lsa);
  oversized.resize(kMaxEncoded + 1, 0);
  EXPECT_FALSE(decode_mc_lsa(oversized).has_value());
}

/// A forged batch count beyond kMaxBatchLsas (or beyond what the bytes
/// hold) must reject without reserving the claimed size, and a
/// corrupted sub-LSA must poison the whole batch.
TEST(CodecFuzz, BatchForgedCountsAndBadSubLsasReject) {
  util::RngStream rng(1009);
  McLsaBatch batch;
  for (int i = 0; i < 3; ++i) batch.lsas.push_back(sample_lsa(rng));
  const Bytes bytes = encode(batch);  // >= 2 LSAs: real batch frame
  // count lives after [type, version]; forge it over the cap and over
  // what the buffer actually carries.
  for (const std::uint32_t forged_count :
       {kMaxBatchLsas + 1, std::uint32_t{0xFFFFFFFF}, std::uint32_t{200}}) {
    Bytes forged = bytes;
    for (int i = 0; i < 4; ++i) {
      forged[2 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(forged_count >> (8 * i));
    }
    EXPECT_FALSE(decode_mc_lsa_batch(forged).has_value());
  }
  // A batch whose first sub-LSA length points past the end rejects.
  Bytes truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(decode_mc_lsa_batch(truncated).has_value());
}

// --- UDP-frame corpus: the socket backend's framing around the codec ---

net::Frame sample_frame(util::RngStream& rng) {
  net::Frame f;
  f.sender = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
  f.link = static_cast<graph::LinkId>(rng.uniform_int(0, 30));
  switch (rng.uniform_int(0, 2)) {
    case 0:
      f.kind = net::FrameKind::kData;
      f.origin = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
      f.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          f.payload = encode(sample_lsa(rng));
          break;
        case 1:
          f.payload = encode(lsr::LinkEventAd{
              static_cast<graph::LinkId>(rng.uniform_int(0, 40)),
              rng.bernoulli(0.5)});
          break;
        default:
          f.payload = encode(sample_sync(rng));
          break;
      }
      break;
    case 1:
      f.kind = net::FrameKind::kAck;
      f.origin = static_cast<graph::NodeId>(rng.uniform_int(0, 7));
      f.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      break;
    default:
      f.kind = net::FrameKind::kHello;
      f.hello_seq = static_cast<std::uint32_t>(rng.uniform_int(1, 1000));
      f.echo_seq = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      f.echo_hold = rng.uniform_real(0.0, 0.5);
      break;
  }
  return f;
}

/// decode_frame must never crash; a successful decode must re-encode to
/// something decodable, and a decoded DATA payload must go through the
/// inner codec without crashing either (the full untrusted-bytes path a
/// real datagram takes in NetSwitch::handle_datagram).
void probe_frame(const Bytes& bytes) {
  const std::optional<net::Frame> f = net::decode_frame(bytes);
  if (f.has_value()) {
    EXPECT_TRUE(net::decode_frame(net::encode_frame(*f)).has_value());
    if (f->kind == net::FrameKind::kData) probe(f->payload);
  }
}

TEST(FrameFuzz, MutatedFramesNeverCrashDecode) {
  util::RngStream rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    Bytes base = net::encode_frame(sample_frame(rng));
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) base = mutate(base, rng);
    probe_frame(base);
  }
}

TEST(FrameFuzz, ArbitraryBytesNeverCrashDecode) {
  util::RngStream rng(4242);
  for (int round = 0; round < 2000; ++round) {
    Bytes bytes(rng.index(96));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    probe_frame(bytes);
  }
}

TEST(FrameFuzz, ValidFramesRoundTrip) {
  util::RngStream rng(17);
  for (int round = 0; round < 500; ++round) {
    const net::Frame f = sample_frame(rng);
    const std::optional<net::Frame> back =
        net::decode_frame(net::encode_frame(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, f.kind);
    EXPECT_EQ(back->sender, f.sender);
    EXPECT_EQ(back->link, f.link);
    if (f.kind == net::FrameKind::kData) {
      EXPECT_EQ(back->origin, f.origin);
      EXPECT_EQ(back->seq, f.seq);
      EXPECT_EQ(back->payload, f.payload);
    } else if (f.kind == net::FrameKind::kAck) {
      EXPECT_EQ(back->origin, f.origin);
      EXPECT_EQ(back->seq, f.seq);
    } else {
      EXPECT_EQ(back->hello_seq, f.hello_seq);
      EXPECT_EQ(back->echo_seq, f.echo_seq);
      // Hold time survives to microsecond resolution.
      EXPECT_NEAR(back->echo_hold, f.echo_hold, 1e-6);
    }
  }
}

TEST(FrameFuzz, AllPrefixesOfValidFramesRejectCleanly) {
  util::RngStream rng(23);
  for (int round = 0; round < 50; ++round) {
    const Bytes bytes = net::encode_frame(sample_frame(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const Bytes prefix(bytes.begin(),
                         bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_FALSE(net::decode_frame(prefix).has_value()) << "cut=" << cut;
    }
  }
}

TEST(FrameFuzz, DataLengthFieldMustMatchBody) {
  util::RngStream rng(31);
  net::Frame f;
  f.kind = net::FrameKind::kData;
  f.sender = 1;
  f.link = 2;
  f.origin = 3;
  f.seq = 7;
  f.payload = encode(lsr::LinkEventAd{4, true});
  Bytes bytes = net::encode_frame(f);
  ASSERT_TRUE(net::decode_frame(bytes).has_value());
  // payload_len lives at offset 24; claiming one byte more or less than
  // is actually present must fail (truncation / trailing-garbage).
  for (const int delta : {-1, 1}) {
    Bytes forged = bytes;
    const auto len = static_cast<std::uint32_t>(
        static_cast<int>(f.payload.size()) + delta);
    for (int i = 0; i < 4; ++i) {
      forged[24 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
    EXPECT_FALSE(net::decode_frame(forged).has_value()) << "delta=" << delta;
  }
  // Oversized datagrams are rejected before any body parsing.
  Bytes huge(net::kMaxDatagram + 1, 0);
  EXPECT_FALSE(net::decode_frame(huge).has_value());
}

}  // namespace
}  // namespace dgmc::core
