// Regression suite replaying the two protocol bugs the checker caught
// during development from committed witness traces (tests/traces/):
//
//   premature_destroy.trace — destroy-on-empty racing a concurrent
//     join: maybe_destroy tearing a connection down the moment the
//     member list looks empty, without the R-dominates-E guard,
//     desynchronizes member lists (agreement oracle). Seeded by the
//     TEST-ONLY DgmcConfig::premature_destroy_on_empty knob.
//
//   unguarded_sync.trace — McSync advertising raw R[y] instead of the
//     sync floor: a restarted switch re-learns its own history
//     double-counted, so a neighbor directly hears a stamp beyond its
//     known history (heard-within-known oracle). Seeded by
//     DgmcConfig::unguarded_sync.
//
// Each bug is pinned three ways: (1) the committed trace still replays
// to the same oracle, step for step; (2) a reduced DFS (sleep sets +
// symmetry canonicalization) finds the violation from scratch —
// reduction must not prune the buggy interleavings away; (3) backward
// fault-directed search rediscovers a fault schedule reaching the
// violation: the empty schedule for the churn-only destroy bug, a
// crash/restart schedule for the sync bug (which needs a wiped switch
// to resynchronize).
//
// DGMC_TRACE_DIR is injected by tests/CMakeLists.txt and points at the
// source-tree tests/traces directory.
#include <string>

#include <gtest/gtest.h>

#include "check/backward.hpp"
#include "check/explorer.hpp"
#include "check/trace.hpp"

namespace dgmc::check {
namespace {

struct Witness {
  Trace trace;
  ScenarioSpec spec;
};

Witness load(const char* file) {
  const std::string path = std::string(DGMC_TRACE_DIR "/") + file;
  std::string error;
  std::optional<Trace> trace = load_trace(path, &error);
  EXPECT_TRUE(trace.has_value()) << path << ": " << error;
  std::optional<ScenarioSpec> spec = resolve_spec(*trace, &error);
  EXPECT_TRUE(spec.has_value()) << path << ": " << error;
  return Witness{std::move(*trace), std::move(*spec)};
}

SearchLimits limits_with(std::size_t depth) {
  SearchLimits limits;
  limits.max_depth = depth;
  return limits;
}

// --- premature destroy-on-empty -------------------------------------

TEST(PrematureDestroyRegression, TraceStillReplaysToAgreementViolation) {
  const Witness w = load("premature_destroy.trace");
  EXPECT_TRUE(w.spec.params.dgmc.premature_destroy_on_empty);
  const ReplayResult r = replay(w.spec, w.trace);
  EXPECT_FALSE(r.divergence.has_value()) << *r.divergence;
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->oracle, "agreement");
  EXPECT_EQ(r.steps_executed, w.trace.choices.size());
}

TEST(PrematureDestroyRegression, ReducedDfsFindsTheBug) {
  const Witness w = load("premature_destroy.trace");
  SearchLimits limits = limits_with(/*depth=*/30);
  limits.reduce = true;
  const SearchResult r = explore_dfs(w.spec, limits);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->oracle, "agreement");
}

TEST(PrematureDestroyRegression, BackwardSearchAcceptsEmptySchedule) {
  const Witness w = load("premature_destroy.trace");
  const ReplayResult r = replay(w.spec, w.trace);
  ASSERT_TRUE(r.violation.has_value());
  const BackwardResult back =
      backward_search(w.spec, *r.violation, limits_with(30));
  ASSERT_TRUE(back.found) << back.candidates_tried << " candidates tried";
  EXPECT_EQ(back.candidates_tried, 1u);
  EXPECT_TRUE(back.schedule.crashes.empty());
  EXPECT_TRUE(back.schedule.flaps.empty());
  EXPECT_EQ(back.search.violation->oracle, "agreement");
}

// --- unguarded McSync double-count ----------------------------------

TEST(UnguardedSyncRegression, TraceStillReplaysToHeardWithinKnown) {
  const Witness w = load("unguarded_sync.trace");
  EXPECT_TRUE(w.spec.params.dgmc.unguarded_sync);
  const ReplayResult r = replay(w.spec, w.trace);
  EXPECT_FALSE(r.divergence.has_value()) << *r.divergence;
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->oracle, "heard-within-known");
  EXPECT_EQ(r.steps_executed, w.trace.choices.size());
}

TEST(UnguardedSyncRegression, ReducedDfsFindsTheBug) {
  const Witness w = load("unguarded_sync.trace");
  SearchLimits limits = limits_with(/*depth=*/20);
  limits.reduce = true;
  const SearchResult r = explore_dfs(w.spec, limits);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->oracle, "heard-within-known");
}

TEST(UnguardedSyncRegression, BackwardSearchRediscoversACrashSchedule) {
  // The sync bug needs a crash/restart cycle: pure churn and the
  // crash-free candidates must be rejected, and a single-switch
  // crash/restart schedule accepted. Each candidate probe is bounded
  // (depth 24, 300k transitions) so rejected candidates cannot blow up
  // the diamond's depth-24 interleaving space.
  const Witness w = load("unguarded_sync.trace");
  const ReplayResult r = replay(w.spec, w.trace);
  ASSERT_TRUE(r.violation.has_value());
  SearchLimits limits = limits_with(/*depth=*/24);
  limits.max_transitions = 300000;
  const BackwardResult back = backward_search(w.spec, *r.violation, limits);
  ASSERT_TRUE(back.found) << back.candidates_tried << " candidates tried";
  EXPECT_GT(back.candidates_tried, 1u);  // empty schedule rejected
  ASSERT_EQ(back.schedule.crashes.size(), 1u);
  EXPECT_TRUE(back.schedule.flaps.empty());
  EXPECT_EQ(back.search.violation->oracle, "heard-within-known");
  // The accepted scenario replays like any counterexample.
  const ReplayResult again = replay(back.scenario, back.search.trace);
  ASSERT_TRUE(again.violation.has_value());
  EXPECT_EQ(again.violation->oracle, "heard-within-known");
}

}  // namespace
}  // namespace dgmc::check
