#include "lsr/flooding.hpp"

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dgmc::lsr {
namespace {

using Net = FloodingNetwork<std::string>;

TEST(Flooding, ReachesEveryNodeExactlyOnce) {
  des::Scheduler sched;
  const graph::Graph g = graph::ring(8);
  Net net(sched, g, 0.0);
  std::multiset<graph::NodeId> receivers;
  net.set_receiver([&](const Net::Delivery& d) {
    receivers.insert(d.at);
    EXPECT_EQ(d.origin, 0);
    EXPECT_EQ(d.payload, "hello");
  });
  net.flood(0, "hello");
  sched.run();
  EXPECT_EQ(receivers.size(), 7u);  // everyone but the origin
  for (graph::NodeId n = 1; n < 8; ++n) EXPECT_EQ(receivers.count(n), 1u);
  EXPECT_EQ(net.floodings_originated(), 1u);
  EXPECT_GT(net.duplicates_dropped(), 0u);  // ring floods collide
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Flooding, DeliveryTimeIsShortestDelayPath) {
  des::Scheduler sched;
  graph::Graph g = graph::line(4);
  g.set_uniform_delay(2.0);
  Net net(sched, g, 0.5);  // per-hop 2.5
  std::vector<std::pair<graph::NodeId, double>> arrivals;
  net.set_receiver([&](const Net::Delivery& d) {
    arrivals.push_back({d.at, sched.now()});
  });
  net.flood(0, "x");
  sched.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], (std::pair<graph::NodeId, double>{1, 2.5}));
  EXPECT_EQ(arrivals[1], (std::pair<graph::NodeId, double>{2, 5.0}));
  EXPECT_EQ(arrivals[2], (std::pair<graph::NodeId, double>{3, 7.5}));
}

TEST(Flooding, WorstCaseTimeMatchesFloodingDiameter) {
  util::RngStream rng(3);
  graph::Graph g = graph::random_connected(30, 3.0, rng);
  g.set_uniform_delay(1.0);
  des::Scheduler sched;
  Net net(sched, g, 0.25);
  double last_arrival = 0.0;
  int count = 0;
  net.set_receiver([&](const Net::Delivery&) {
    last_arrival = sched.now();
    ++count;
  });
  net.flood(5, "x");
  sched.run();
  EXPECT_EQ(count, 29);
  const graph::ShortestPaths sp = graph::dijkstra(
      g, 5, [](const graph::Link& l) { return l.delay + 0.25; });
  double ecc = 0.0;
  for (double d : sp.dist) ecc = std::max(ecc, d);
  EXPECT_DOUBLE_EQ(last_arrival, ecc);
  EXPECT_LE(last_arrival, graph::flooding_diameter(g, 0.25));
}

TEST(Flooding, DistinctFloodingsAreIndependent) {
  des::Scheduler sched;
  const graph::Graph g = graph::star(5);
  Net net(sched, g, 0.0);
  int deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  net.flood(1, "a");
  net.flood(1, "b");
  net.flood(2, "c");
  sched.run();
  EXPECT_EQ(deliveries, 3 * 4);
  EXPECT_EQ(net.floodings_originated(), 3u);
}

TEST(Flooding, SequenceNumbersPerOrigin) {
  des::Scheduler sched;
  const graph::Graph g = graph::line(2);
  Net net(sched, g, 0.0);
  std::vector<std::uint32_t> seqs;
  net.set_receiver([&](const Net::Delivery& d) { seqs.push_back(d.seq); });
  net.flood(0, "a");
  net.flood(0, "b");
  net.flood(1, "c");
  sched.run();
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1, 0}));
}

TEST(Flooding, RoutesAroundDownLinks) {
  des::Scheduler sched;
  graph::Graph g = graph::ring(6);
  g.set_link_up(g.find_link(0, 1), false);
  Net net(sched, g, 0.0);
  std::set<graph::NodeId> reached;
  net.set_receiver([&](const Net::Delivery& d) { reached.insert(d.at); });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(reached.size(), 5u);  // still everyone, the long way
  EXPECT_TRUE(reached.count(1));
}

TEST(Flooding, PartitionLimitsReach) {
  des::Scheduler sched;
  graph::Graph g = graph::line(4);
  g.set_link_up(g.find_link(1, 2), false);
  Net net(sched, g, 0.0);
  std::set<graph::NodeId> reached;
  net.set_receiver([&](const Net::Delivery& d) { reached.insert(d.at); });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(reached, (std::set<graph::NodeId>{1}));
}

TEST(Flooding, DedupMemoryStaysBoundedOverLongRuns) {
  // Regression: per-switch dedup used to keep every (origin, seq) key
  // forever, leaking across long runs. Seqs are per-origin monotone, so
  // in-order history now compresses into a high-water mark; only
  // reorder-window stragglers are buffered, and they drain.
  des::Scheduler sched;
  const graph::Graph g = graph::line(3);
  Net net(sched, g, 0.0);
  std::uint64_t deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  constexpr int kFloodings = 100000;
  for (int i = 0; i < kFloodings; ++i) {
    net.flood(0, "x");
    if (i % 100 == 99) sched.run();
  }
  sched.run();
  EXPECT_EQ(deliveries, static_cast<std::uint64_t>(kFloodings) * 2);
  EXPECT_EQ(net.dedup_backlog(), 0u);  // O(1) memory, not O(floodings)
}

TEST(Flooding, JitterReorderingNeverDoubleDelivers) {
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  g.set_uniform_delay(1.0);
  Net net(sched, g, 0.0);
  // Decreasing extra delay: later copies overtake earlier ones.
  double extra = 1.0;
  FaultHooks hooks;
  hooks.extra_delay = [&extra](graph::LinkId) {
    extra -= 0.3;
    return std::max(extra, 0.0);
  };
  net.set_fault_hooks(std::move(hooks));
  std::vector<std::string> received;
  net.set_receiver(
      [&](const Net::Delivery& d) { received.push_back(d.payload); });
  net.flood(0, "a");  // departs with +0.7
  net.flood(0, "b");  // departs with +0.4 — arrives first
  net.flood(0, "c");  // departs with +0.1 — arrives first of all
  sched.run();
  // Each payload delivered exactly once, in overtaking order.
  EXPECT_EQ(received, (std::vector<std::string>{"c", "b", "a"}));
  EXPECT_EQ(net.dedup_backlog(), 0u);  // the gap closed and drained
}

TEST(Flooding, UnreliableModeLosesMessagesForGood) {
  des::Scheduler sched;
  graph::Graph g = graph::line(3);
  Net net(sched, g, 0.0);
  const graph::LinkId far_link = g.find_link(1, 2);
  FaultHooks hooks;  // black-holes the far link only
  hooks.drop = [far_link](graph::LinkId l) { return l == far_link; };
  net.set_fault_hooks(std::move(hooks));
  std::set<graph::NodeId> reached;
  net.set_receiver([&](const Net::Delivery& d) { reached.insert(d.at); });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(reached, (std::set<graph::NodeId>{1}));  // 2 never hears
  EXPECT_GT(net.messages_dropped(), 0u);
  EXPECT_EQ(net.retransmissions(), 0u);  // nothing fights the loss
}

TEST(Flooding, ReliableModeRetransmitsThroughLoss) {
  des::Scheduler sched;
  graph::Graph g = graph::line(3);
  Net net(sched, g, 0.0);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 5.0;  // > RTT of 2.0
  cfg.backoff = 2.0;
  cfg.max_retransmits = 10;
  net.set_reliable(cfg);
  const graph::LinkId far_link = g.find_link(1, 2);
  int kills = 3;  // the far link eats the first three data copies
  FaultHooks hooks;
  hooks.drop = [far_link, &kills](graph::LinkId l) {
    if (l != far_link) return false;
    if (kills > 0) {
      --kills;
      return true;
    }
    return false;
  };
  net.set_fault_hooks(std::move(hooks));
  std::multiset<graph::NodeId> reached;
  net.set_receiver([&](const Net::Delivery& d) { reached.insert(d.at); });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(reached, (std::multiset<graph::NodeId>{1, 2}));
  EXPECT_GE(net.retransmissions(), 3u);
  EXPECT_GT(net.acks_sent(), 0u);
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Flooding, LostAckTriggersRetransmitAndReack) {
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  Net net(sched, g, 0.0);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 5.0;
  net.set_reliable(cfg);
  // Transmission order on the single link: data (keep), first ack
  // (drop), retransmitted data (keep), second ack (keep).
  int call = 0;
  FaultHooks hooks;
  hooks.drop = [&call](graph::LinkId) { return ++call == 2; };
  net.set_fault_hooks(std::move(hooks));
  int deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(deliveries, 1);  // the retransmitted duplicate is suppressed
  EXPECT_EQ(net.retransmissions(), 1u);
  // Three ack attempts: the dropped one, the echo-forward's ack, and
  // the re-ack of the retransmitted duplicate (lost-ack recovery).
  EXPECT_EQ(net.acks_sent(), 3u);
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);
}

TEST(Flooding, ReliableGivesUpAtRetryCap) {
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  Net net(sched, g, 0.0);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 5.0;
  cfg.max_retransmits = 3;
  net.set_reliable(cfg);
  FaultHooks hooks;
  hooks.drop = [](graph::LinkId) { return true; };  // total black-hole
  net.set_fault_hooks(std::move(hooks));
  int deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(net.retransmissions(), 3u);
  EXPECT_EQ(net.give_ups(), 1u);
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);  // calendar drained
}

TEST(Flooding, ReliableModeIsQuietWithoutLoss) {
  des::Scheduler sched;
  const graph::Graph g = graph::ring(6);
  Net net(sched, g, 0.0);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 10.0;  // acks win the race comfortably
  net.set_reliable(cfg);
  int deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(deliveries, 5);
  EXPECT_EQ(net.retransmissions(), 0u);  // every first copy was acked
  EXPECT_EQ(net.acks_sent(), net.link_transmissions());
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);
}

TEST(Flooding, DownedNodeDiscardsArrivalsSilently) {
  des::Scheduler sched;
  graph::Graph g = graph::line(3);
  Net net(sched, g, 0.0);
  net.set_node_up(1, false);
  int deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(deliveries, 0);  // 1 is dead; 2 is only reachable through 1
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.set_node_up(1, true);
  net.flood(0, "y");
  sched.run();
  EXPECT_EQ(deliveries, 2);  // back to normal service
}

TEST(Flooding, SenderCrashAbandonsPendingRetransmissions) {
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  Net net(sched, g, 0.0);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 5.0;
  cfg.max_retransmits = 50;
  net.set_reliable(cfg);
  FaultHooks hooks;
  hooks.drop = [](graph::LinkId) { return true; };
  net.set_fault_hooks(std::move(hooks));
  net.flood(0, "x");
  EXPECT_EQ(net.retransmit_timers_armed(), 1u);
  net.set_node_up(0, false);  // the sender dies mid-retry
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);
  sched.run();  // no ghost timers fire
  EXPECT_EQ(net.retransmissions(), 0u);
  EXPECT_EQ(net.give_ups(), 0u);
}

TEST(Flooding, SameOriginDeliveryPreservesOrder) {
  // Two floodings from the same origin must arrive everywhere in
  // origination order (static delays ⇒ wavefronts cannot overtake).
  util::RngStream rng(9);
  graph::Graph g = graph::random_connected(25, 3.0, rng);
  g.set_uniform_delay(1.0);
  des::Scheduler sched;
  Net net(sched, g, 0.0);
  std::vector<std::string> order_at_20;
  net.set_receiver([&](const Net::Delivery& d) {
    if (d.at == 20) order_at_20.push_back(d.payload);
  });
  net.flood(3, "first");
  sched.schedule_after(0.5, [&] { net.flood(3, "second"); });
  sched.run();
  EXPECT_EQ(order_at_20, (std::vector<std::string>{"first", "second"}));
}

TEST(Overload, BackpressureQueuesThenDeliversEverything) {
  // Inflight cap 1 with a roomy queue: a burst degrades latency (copies
  // wait their turn) but every message still arrives, nothing is shed.
  des::Scheduler sched;
  graph::Graph g = graph::line(3);
  g.set_uniform_delay(1.0);
  Net net(sched, g, 0.0);
  OverloadConfig overload;
  overload.max_inflight_per_link = 1;
  overload.max_queue_per_link = 64;
  net.set_overload(overload);
  std::uint64_t deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  constexpr int kBurst = 20;
  for (int i = 0; i < kBurst; ++i) net.flood(0, "x");
  EXPECT_GT(net.queued(), 0u);  // the burst is waiting, not in flight
  sched.run();
  EXPECT_EQ(deliveries, static_cast<std::uint64_t>(kBurst) * 2);
  EXPECT_EQ(net.sheds(), 0u);
  EXPECT_EQ(net.queued(), 0u);
  EXPECT_GE(net.queue_peak(), static_cast<std::size_t>(kBurst - 1));
}

TEST(Overload, FullQueueShedsInsteadOfGrowing) {
  // Queue cap 2 on top of inflight cap 1: a 20-message burst sheds the
  // overflow — memory stays bounded at the cost of lost copies.
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  g.set_uniform_delay(1.0);
  Net net(sched, g, 0.0);
  OverloadConfig overload;
  overload.max_inflight_per_link = 1;
  overload.max_queue_per_link = 2;
  net.set_overload(overload);
  std::uint64_t deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  constexpr int kBurst = 20;
  for (int i = 0; i < kBurst; ++i) net.flood(0, "x");
  EXPECT_EQ(net.queued(), 2u);  // hard cap, not the burst size
  sched.run();
  EXPECT_EQ(net.sheds(), static_cast<std::uint64_t>(kBurst - 3));
  EXPECT_EQ(deliveries, 3u);  // 1 inflight + 2 queued survived
  EXPECT_EQ(net.queued(), 0u);
  EXPECT_EQ(net.queue_peak(), 2u);
}

TEST(Overload, ReliableModeRecoversShedCopies) {
  // Under reliable flooding a shed copy is not lost for good: its
  // pending entry re-attempts at the next RTO once the storm passes —
  // backpressure degrades latency, the delivery guarantee holds.
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  g.set_uniform_delay(1.0);
  Net net(sched, g, 0.0);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 100.0;
  cfg.max_retransmits = 10;
  net.set_reliable(cfg);
  OverloadConfig overload;
  overload.max_inflight_per_link = 1;
  overload.max_queue_per_link = 1;
  net.set_overload(overload);
  std::uint64_t deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) net.flood(0, "x");
  EXPECT_GT(net.sheds(), 0u);
  sched.run();
  EXPECT_EQ(deliveries, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);
  EXPECT_EQ(net.give_ups(), 0u);
  EXPECT_GT(net.retransmissions(), 0u);  // the recovery path did the work
}

TEST(Overload, LinkDownShedsWaitingCopies) {
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  g.set_uniform_delay(1.0);
  Net net(sched, g, 0.0);
  OverloadConfig overload;
  overload.max_inflight_per_link = 1;
  overload.max_queue_per_link = 8;
  net.set_overload(overload);
  for (int i = 0; i < 5; ++i) net.flood(0, "x");
  EXPECT_EQ(net.queued(), 4u);
  const graph::LinkId link = g.find_link(0, 1);
  g.set_link_up(link, false);
  net.on_link_down(link);
  EXPECT_EQ(net.queued(), 0u);
  EXPECT_EQ(net.sheds(), 4u);
  sched.run();  // the one in-flight copy arrives; nothing re-queues
  EXPECT_EQ(net.queued(), 0u);
}

TEST(Overload, DedupAheadCapCompactsAbandonedGaps) {
  // A permanently lost seq 0 (unreliable black-hole for the first copy)
  // leaves a gap the `ahead` buffer would otherwise grow behind
  // forever. With a cap, the gap is declared abandoned and compacted;
  // backlog stays bounded and later messages still deliver once.
  des::Scheduler sched;
  graph::Graph g = graph::line(2);
  Net net(sched, g, 0.0);
  OverloadConfig overload;
  overload.max_dedup_ahead = 4;
  net.set_overload(overload);
  int transmissions = 0;
  FaultHooks hooks;
  hooks.drop = [&transmissions](graph::LinkId) { return transmissions++ == 0; };
  net.set_fault_hooks(std::move(hooks));
  std::uint64_t deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  constexpr int kFloodings = 50;
  for (int i = 0; i < kFloodings; ++i) {
    net.flood(0, "x");
    sched.run();
    EXPECT_LE(net.dedup_backlog(), overload.max_dedup_ahead);
  }
  EXPECT_EQ(deliveries, static_cast<std::uint64_t>(kFloodings - 1));
  EXPECT_GE(net.dedup_compactions(), 1u);
}

TEST(Overload, BookkeepingStaysSteadyOverTenMinuteSoak) {
  // Satellite regression for unbounded-growth bugs: ten simulated
  // minutes of lossy reliable flooding with backpressure on. At every
  // periodic drain the dedup backlog, armed retransmit timers, and tx
  // queues must return to a small steady state — any monotone growth
  // in those tables is a leak this test pins down.
  des::Scheduler sched;
  util::RngStream topo_rng(17);
  graph::Graph g = graph::random_connected(12, 3.0, topo_rng);
  g.set_uniform_delay(1e-3);
  Net net(sched, g, 4e-6);
  ReliableFloodingConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = 50e-3;
  cfg.max_retransmits = 6;
  net.set_reliable(cfg);
  OverloadConfig overload;
  overload.max_inflight_per_link = 4;
  overload.max_queue_per_link = 32;
  overload.max_dedup_ahead = 64;
  net.set_overload(overload);
  util::RngStream loss_rng(23);
  FaultHooks hooks;
  hooks.drop = [&loss_rng](graph::LinkId) { return loss_rng.bernoulli(0.05); };
  net.set_fault_hooks(std::move(hooks));
  std::uint64_t deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });

  constexpr double kSoakSeconds = 600.0;
  constexpr double kTick = 0.5;
  util::RngStream origin_rng(31);
  double now = 0.0;
  std::size_t backlog_high = 0;
  while (now < kSoakSeconds) {
    // A small burst from a random origin each tick.
    const auto origin = std::min<graph::NodeId>(
        g.node_count() - 1,
        static_cast<graph::NodeId>(origin_rng.uniform01() * g.node_count()));
    for (int i = 0; i < 3; ++i) net.flood(origin, "x");
    now += kTick;
    sched.run_until(now);
    backlog_high = std::max(backlog_high, net.dedup_backlog());
  }
  sched.run();  // final drain
  EXPECT_GT(deliveries, 0u);
  // Steady state: everything in-flight or armed has resolved...
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.retransmit_timers_armed(), 0u);
  EXPECT_EQ(net.queued(), 0u);
  // ...and the dedup tables never outgrew the reorder window. The
  // bound is per-(switch, origin) caps times the pair count, but in
  // practice give-up gaps compact long before that.
  EXPECT_LE(net.dedup_backlog(),
            overload.max_dedup_ahead * static_cast<std::size_t>(
                                           g.node_count() * g.node_count()));
  EXPECT_LE(backlog_high, 4096u);
}

}  // namespace
}  // namespace dgmc::lsr
