#include "lsr/flooding.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dgmc::lsr {
namespace {

using Net = FloodingNetwork<std::string>;

TEST(Flooding, ReachesEveryNodeExactlyOnce) {
  des::Scheduler sched;
  const graph::Graph g = graph::ring(8);
  Net net(sched, g, 0.0);
  std::multiset<graph::NodeId> receivers;
  net.set_receiver([&](const Net::Delivery& d) {
    receivers.insert(d.at);
    EXPECT_EQ(d.origin, 0);
    EXPECT_EQ(d.payload, "hello");
  });
  net.flood(0, "hello");
  sched.run();
  EXPECT_EQ(receivers.size(), 7u);  // everyone but the origin
  for (graph::NodeId n = 1; n < 8; ++n) EXPECT_EQ(receivers.count(n), 1u);
  EXPECT_EQ(net.floodings_originated(), 1u);
  EXPECT_GT(net.duplicates_dropped(), 0u);  // ring floods collide
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Flooding, DeliveryTimeIsShortestDelayPath) {
  des::Scheduler sched;
  graph::Graph g = graph::line(4);
  g.set_uniform_delay(2.0);
  Net net(sched, g, 0.5);  // per-hop 2.5
  std::vector<std::pair<graph::NodeId, double>> arrivals;
  net.set_receiver([&](const Net::Delivery& d) {
    arrivals.push_back({d.at, sched.now()});
  });
  net.flood(0, "x");
  sched.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], (std::pair<graph::NodeId, double>{1, 2.5}));
  EXPECT_EQ(arrivals[1], (std::pair<graph::NodeId, double>{2, 5.0}));
  EXPECT_EQ(arrivals[2], (std::pair<graph::NodeId, double>{3, 7.5}));
}

TEST(Flooding, WorstCaseTimeMatchesFloodingDiameter) {
  util::RngStream rng(3);
  graph::Graph g = graph::random_connected(30, 3.0, rng);
  g.set_uniform_delay(1.0);
  des::Scheduler sched;
  Net net(sched, g, 0.25);
  double last_arrival = 0.0;
  int count = 0;
  net.set_receiver([&](const Net::Delivery&) {
    last_arrival = sched.now();
    ++count;
  });
  net.flood(5, "x");
  sched.run();
  EXPECT_EQ(count, 29);
  const graph::ShortestPaths sp = graph::dijkstra(
      g, 5, [](const graph::Link& l) { return l.delay + 0.25; });
  double ecc = 0.0;
  for (double d : sp.dist) ecc = std::max(ecc, d);
  EXPECT_DOUBLE_EQ(last_arrival, ecc);
  EXPECT_LE(last_arrival, graph::flooding_diameter(g, 0.25));
}

TEST(Flooding, DistinctFloodingsAreIndependent) {
  des::Scheduler sched;
  const graph::Graph g = graph::star(5);
  Net net(sched, g, 0.0);
  int deliveries = 0;
  net.set_receiver([&](const Net::Delivery&) { ++deliveries; });
  net.flood(1, "a");
  net.flood(1, "b");
  net.flood(2, "c");
  sched.run();
  EXPECT_EQ(deliveries, 3 * 4);
  EXPECT_EQ(net.floodings_originated(), 3u);
}

TEST(Flooding, SequenceNumbersPerOrigin) {
  des::Scheduler sched;
  const graph::Graph g = graph::line(2);
  Net net(sched, g, 0.0);
  std::vector<std::uint32_t> seqs;
  net.set_receiver([&](const Net::Delivery& d) { seqs.push_back(d.seq); });
  net.flood(0, "a");
  net.flood(0, "b");
  net.flood(1, "c");
  sched.run();
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1, 0}));
}

TEST(Flooding, RoutesAroundDownLinks) {
  des::Scheduler sched;
  graph::Graph g = graph::ring(6);
  g.set_link_up(g.find_link(0, 1), false);
  Net net(sched, g, 0.0);
  std::set<graph::NodeId> reached;
  net.set_receiver([&](const Net::Delivery& d) { reached.insert(d.at); });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(reached.size(), 5u);  // still everyone, the long way
  EXPECT_TRUE(reached.count(1));
}

TEST(Flooding, PartitionLimitsReach) {
  des::Scheduler sched;
  graph::Graph g = graph::line(4);
  g.set_link_up(g.find_link(1, 2), false);
  Net net(sched, g, 0.0);
  std::set<graph::NodeId> reached;
  net.set_receiver([&](const Net::Delivery& d) { reached.insert(d.at); });
  net.flood(0, "x");
  sched.run();
  EXPECT_EQ(reached, (std::set<graph::NodeId>{1}));
}

TEST(Flooding, SameOriginDeliveryPreservesOrder) {
  // Two floodings from the same origin must arrive everywhere in
  // origination order (static delays ⇒ wavefronts cannot overtake).
  util::RngStream rng(9);
  graph::Graph g = graph::random_connected(25, 3.0, rng);
  g.set_uniform_delay(1.0);
  des::Scheduler sched;
  Net net(sched, g, 0.0);
  std::vector<std::string> order_at_20;
  net.set_receiver([&](const Net::Delivery& d) {
    if (d.at == 20) order_at_20.push_back(d.payload);
  });
  net.flood(3, "first");
  sched.schedule_after(0.5, [&] { net.flood(3, "second"); });
  sched.run();
  EXPECT_EQ(order_at_20, (std::vector<std::string>{"first", "second"}));
}

}  // namespace
}  // namespace dgmc::lsr
