#include "sim/hosts.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dgmc::sim {
namespace {

constexpr mc::McId kMc = 0;

struct Fixture {
  Fixture()
      : net(make_graph(), make_params(), mc::make_incremental_algorithm()),
        hosts(net) {}

  static graph::Graph make_graph() {
    graph::Graph g = graph::ring(6);
    g.set_uniform_delay(1e-6);
    return g;
  }
  static DgmcNetwork::Params make_params() {
    DgmcNetwork::Params p;
    p.per_hop_overhead = 4e-6;
    p.dgmc.computation_time = 1e-3;
    return p;
  }

  DgmcNetwork net;
  HostLayer hosts;
};

TEST(HostLayer, FirstHostJoinsSwitch) {
  Fixture f;
  f.hosts.attach(100, /*ingress=*/2);
  EXPECT_TRUE(f.hosts.host_join(100, kMc, mc::McType::kSymmetric));
  f.net.run_to_quiescence();
  EXPECT_TRUE(f.net.switch_at(2).members(kMc)->contains(2));
  EXPECT_TRUE(f.hosts.subscribed(100, kMc));
  EXPECT_EQ(f.hosts.ingress_of(100), 2);
}

TEST(HostLayer, SecondHostAtSameSwitchIsLocalOnly) {
  Fixture f;
  f.hosts.attach(100, 2);
  f.hosts.attach(101, 2);
  f.hosts.host_join(100, kMc, mc::McType::kSymmetric);
  f.net.run_to_quiescence();
  const auto before = f.net.totals();
  // Same switch, same role: the network hears nothing.
  EXPECT_FALSE(f.hosts.host_join(101, kMc, mc::McType::kSymmetric));
  f.net.run_to_quiescence();
  EXPECT_EQ(f.net.totals().mc_lsa_floodings, before.mc_lsa_floodings);
  EXPECT_EQ(f.hosts.subscribers(2, kMc).size(), 2u);
}

TEST(HostLayer, SwitchLeavesOnlyWhenLastHostLeaves) {
  Fixture f;
  f.hosts.attach(100, 2);
  f.hosts.attach(101, 2);
  f.hosts.attach(102, 4);
  f.hosts.host_join(100, kMc, mc::McType::kSymmetric);
  f.hosts.host_join(101, kMc, mc::McType::kSymmetric);
  f.hosts.host_join(102, kMc, mc::McType::kSymmetric);
  f.net.run_to_quiescence();
  EXPECT_EQ(f.net.switch_at(0).members(kMc)->all(),
            (std::vector<graph::NodeId>{2, 4}));

  EXPECT_FALSE(f.hosts.host_leave(100, kMc));  // 101 still interested
  f.net.run_to_quiescence();
  EXPECT_TRUE(f.net.switch_at(0).members(kMc)->contains(2));

  EXPECT_TRUE(f.hosts.host_leave(101, kMc));  // last host at switch 2
  f.net.run_to_quiescence();
  EXPECT_FALSE(f.net.switch_at(0).members(kMc)->contains(2));
  EXPECT_TRUE(f.net.converged(kMc));
}

TEST(HostLayer, RoleWideningReadvertises) {
  Fixture f;
  f.hosts.attach(100, 1);
  f.hosts.attach(101, 1);
  f.hosts.attach(102, 5);
  f.hosts.host_join(102, kMc, mc::McType::kAsymmetric,
                    mc::MemberRole::kReceiver);
  f.hosts.host_join(100, kMc, mc::McType::kAsymmetric,
                    mc::MemberRole::kReceiver);
  f.net.run_to_quiescence();
  EXPECT_EQ(f.net.switch_at(3).members(kMc)->role_of(1),
            mc::MemberRole::kReceiver);
  // A sending host appears behind switch 1: the switch re-joins kBoth.
  EXPECT_TRUE(f.hosts.host_join(101, kMc, mc::McType::kAsymmetric,
                                mc::MemberRole::kSender));
  f.net.run_to_quiescence();
  EXPECT_EQ(f.net.switch_at(3).members(kMc)->role_of(1),
            mc::MemberRole::kBoth);
  EXPECT_TRUE(f.net.converged(kMc));
}

TEST(HostLayer, RoleNarrowingIsNotAdvertised) {
  Fixture f;
  f.hosts.attach(100, 1);
  f.hosts.attach(101, 1);
  f.hosts.host_join(100, kMc, mc::McType::kAsymmetric,
                    mc::MemberRole::kSender);
  f.hosts.host_join(101, kMc, mc::McType::kAsymmetric,
                    mc::MemberRole::kReceiver);
  f.net.run_to_quiescence();
  // The sender host leaves; receivers remain. Documented behavior: the
  // switch keeps its widest role until it leaves entirely.
  EXPECT_FALSE(f.hosts.host_leave(100, kMc));
  f.net.run_to_quiescence();
  EXPECT_EQ(f.net.switch_at(1).members(kMc)->role_of(1),
            mc::MemberRole::kBoth);
  EXPECT_EQ(f.hosts.aggregate_role(1, kMc), mc::MemberRole::kReceiver);
}

TEST(HostLayer, DetachLeavesEverything) {
  Fixture f;
  f.hosts.attach(100, 3);
  f.hosts.host_join(100, 0, mc::McType::kSymmetric);
  f.hosts.host_join(100, 1, mc::McType::kSymmetric);
  f.net.run_to_quiescence();
  f.hosts.detach(100);
  f.net.run_to_quiescence();
  // Sole member left both MCs: state destroyed network-wide.
  EXPECT_FALSE(f.net.switch_at(0).has_state(0));
  EXPECT_FALSE(f.net.switch_at(0).has_state(1));
  EXPECT_EQ(f.hosts.ingress_of(100), graph::kInvalidNode);
}

TEST(HostLayer, LeaveOfUnknownHostOrMcIsNoOp) {
  Fixture f;
  EXPECT_FALSE(f.hosts.host_leave(999, kMc));
  f.hosts.attach(100, 0);
  EXPECT_FALSE(f.hosts.host_leave(100, kMc));
}

TEST(HostLayer, AggregateRoleUnionsAcrossHosts) {
  Fixture f;
  f.hosts.attach(1, 0);
  f.hosts.attach(2, 0);
  EXPECT_EQ(f.hosts.aggregate_role(0, kMc), mc::MemberRole::kNone);
  f.hosts.host_join(1, kMc, mc::McType::kAsymmetric,
                    mc::MemberRole::kSender);
  f.hosts.host_join(2, kMc, mc::McType::kAsymmetric,
                    mc::MemberRole::kReceiver);
  EXPECT_EQ(f.hosts.aggregate_role(0, kMc), mc::MemberRole::kBoth);
  f.net.run_to_quiescence();
}

}  // namespace
}  // namespace dgmc::sim
