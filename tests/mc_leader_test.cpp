#include "mc/leader.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/network.hpp"

namespace dgmc::mc {
namespace {

TEST(ElectLeader, LowestMemberWins) {
  MemberList ml;
  ml.join(7, MemberRole::kBoth);
  ml.join(3, MemberRole::kBoth);
  ml.join(9, MemberRole::kBoth);
  EXPECT_EQ(elect_leader(ml), 3);
}

TEST(ElectLeader, RoleFilterApplies) {
  MemberList ml;
  ml.join(2, MemberRole::kReceiver);
  ml.join(5, MemberRole::kSender);
  ml.join(8, MemberRole::kBoth);
  EXPECT_EQ(elect_leader(ml), 2);
  EXPECT_EQ(elect_leader(ml, MemberRole::kSender), 5);
  EXPECT_EQ(elect_leader(ml, MemberRole::kReceiver), 2);
}

TEST(ElectLeader, EmptyOrUnqualifiedYieldsInvalid) {
  MemberList ml;
  EXPECT_EQ(elect_leader(ml), graph::kInvalidNode);
  ml.join(4, MemberRole::kReceiver);
  EXPECT_EQ(elect_leader(ml, MemberRole::kSender), graph::kInvalidNode);
}

TEST(ElectLeader, NetworkWideAgreementAndMigrationOnLeave) {
  // D-GMC's converged member lists make the election consistent at
  // every switch, and leadership migrates when the leader leaves.
  graph::Graph g = graph::ring(8);
  g.set_uniform_delay(1e-6);
  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 1e-3;
  sim::DgmcNetwork net(std::move(g), params,
                       make_incremental_algorithm());
  for (graph::NodeId m : {2, 5, 7}) {
    net.join(m, 0, McType::kSymmetric);
    net.run_to_quiescence();
  }
  for (graph::NodeId n = 0; n < 8; ++n) {
    ASSERT_TRUE(net.switch_at(n).has_state(0));
    EXPECT_EQ(elect_leader(*net.switch_at(n).members(0)), 2) << n;
  }
  net.leave(2, 0);
  net.run_to_quiescence();
  for (graph::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(elect_leader(*net.switch_at(n).members(0)), 5) << n;
  }
}

}  // namespace
}  // namespace dgmc::mc
