#include "sim/workload.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace dgmc::sim {
namespace {

TEST(RandomMembers, DistinctSortedWithinRange) {
  util::RngStream rng(1);
  const auto m = random_members(50, 10, rng);
  EXPECT_EQ(m.size(), 10u);
  EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  EXPECT_EQ(std::set<graph::NodeId>(m.begin(), m.end()).size(), 10u);
  for (graph::NodeId n : m) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 50);
  }
}

TEST(BurstyMembership, EventsSortedWithinSpread) {
  util::RngStream rng(2);
  const auto members = random_members(40, 8, rng);
  const auto events =
      bursty_membership(40, members, 12, 5.0, mc::MemberRole::kBoth, rng);
  EXPECT_EQ(events.size(), 12u);
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_LE(events[i].at, events[i + 1].at);
  }
  for (const auto& e : events) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, 5.0);
  }
}

TEST(BurstyMembership, NodesAreDistinctAcrossEvents) {
  util::RngStream rng(3);
  const auto members = random_members(60, 10, rng);
  const auto events =
      bursty_membership(60, members, 20, 1.0, mc::MemberRole::kBoth, rng);
  std::set<graph::NodeId> nodes;
  for (const auto& e : events) nodes.insert(e.node);
  EXPECT_EQ(nodes.size(), events.size());
}

TEST(BurstyMembership, JoinsTargetNonMembersLeavesTargetMembers) {
  util::RngStream rng(4);
  const auto members = random_members(30, 6, rng);
  const auto events =
      bursty_membership(30, members, 15, 1.0, mc::MemberRole::kBoth, rng);
  const std::set<graph::NodeId> initial(members.begin(), members.end());
  for (const auto& e : events) {
    if (e.join) {
      EXPECT_FALSE(initial.count(e.node)) << "join of existing member";
    } else {
      EXPECT_TRUE(initial.count(e.node)) << "leave of non-member";
    }
  }
}

TEST(BurstyMembership, NeverDrainsBelowTwoMembers) {
  util::RngStream rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto members = random_members(20, 3, rng);
    const auto events =
        bursty_membership(20, members, 10, 1.0, mc::MemberRole::kBoth, rng);
    std::set<graph::NodeId> current(members.begin(), members.end());
    // Replay in draw order: distinct nodes make time order irrelevant.
    for (const auto& e : events) {
      if (e.join) current.insert(e.node);
      else current.erase(e.node);
      EXPECT_GE(current.size(), 2u);
    }
  }
}

TEST(PoissonMembership, StrictlyIncreasingTimesWithRoughMeanGap) {
  util::RngStream rng(6);
  const auto members = random_members(100, 10, rng);
  const double mean_gap = 4.0;
  const auto events = poisson_membership(100, members, 60, mean_gap,
                                         mc::MemberRole::kBoth, rng);
  ASSERT_EQ(events.size(), 60u);
  double prev = 0.0;
  double sum_gap = 0.0;
  for (const auto& e : events) {
    EXPECT_GT(e.at, prev);
    sum_gap += e.at - prev;
    prev = e.at;
  }
  EXPECT_NEAR(sum_gap / 60.0, mean_gap, 2.0);
}

TEST(Workloads, RoleIsPropagated) {
  util::RngStream rng(7);
  const auto members = random_members(20, 4, rng);
  const auto events = bursty_membership(20, members, 5, 1.0,
                                        mc::MemberRole::kReceiver, rng);
  for (const auto& e : events) {
    EXPECT_EQ(e.role, mc::MemberRole::kReceiver);
  }
}

TEST(Workloads, DeterministicForSameStream) {
  util::RngStream a(8), b(8);
  const auto ma = random_members(30, 5, a);
  const auto mb = random_members(30, 5, b);
  EXPECT_EQ(ma, mb);
  const auto ea =
      bursty_membership(30, ma, 10, 2.0, mc::MemberRole::kBoth, a);
  const auto eb =
      bursty_membership(30, mb, 10, 2.0, mc::MemberRole::kBoth, b);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].node, eb[i].node);
    EXPECT_EQ(ea[i].join, eb[i].join);
    EXPECT_DOUBLE_EQ(ea[i].at, eb[i].at);
  }
}

}  // namespace
}  // namespace dgmc::sim
