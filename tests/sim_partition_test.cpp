// Partition survival (extension; paper §6 leaves it open): the network
// splits, each side keeps serving its members independently, and on
// heal the McSync database exchange reconciles both sides into one
// agreed topology.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {
namespace {

constexpr mc::McId kMc = 0;

// Two rings of 4, joined by exactly two bridge links 3-4 and 0-7:
// cutting both partitions the network into {0..3} and {4..7}.
graph::Graph dumbbell() {
  graph::Graph g(8);
  // Left ring.
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 0);
  // Right ring.
  g.add_link(4, 5);
  g.add_link(5, 6);
  g.add_link(6, 7);
  g.add_link(7, 4);
  // Bridges.
  g.add_link(3, 4);
  g.add_link(0, 7);
  g.set_uniform_delay(1e-6);
  return g;
}

DgmcNetwork::Params resync_params(bool resync = true) {
  DgmcNetwork::Params p;
  p.per_hop_overhead = 4e-6;
  p.dgmc.computation_time = 1e-3;
  p.dgmc.partition_resync = resync;
  // Both endpoints must detect a failure that partitions the network;
  // the single-detector idealization cannot inform the far side.
  p.dual_link_detection = true;
  return p;
}

struct Partitioned {
  explicit Partitioned(bool resync)
      : net(dumbbell(), resync_params(resync),
            mc::make_incremental_algorithm()) {
    // Members on both sides, converged before the split.
    for (graph::NodeId m : {1, 2, 5, 6}) {
      net.join(m, kMc, mc::McType::kSymmetric);
      net.run_to_quiescence();
    }
    bridge_a = net.physical().find_link(3, 4);
    bridge_b = net.physical().find_link(0, 7);
    net.fail_link(bridge_a);
    net.run_to_quiescence();
    net.fail_link(bridge_b);
    net.run_to_quiescence();
  }

  DgmcNetwork net;
  graph::LinkId bridge_a = graph::kInvalidLink;
  graph::LinkId bridge_b = graph::kInvalidLink;
};

TEST(Partition, EachSideKeepsServingItsMembers) {
  Partitioned p(/*resync=*/true);
  // Events on both sides while split.
  p.net.join(0, kMc, mc::McType::kSymmetric);
  p.net.run_to_quiescence();
  p.net.join(7, kMc, mc::McType::kSymmetric);
  p.net.run_to_quiescence();

  // Left side agrees among itself. Its topology is a Steiner *forest*:
  // the member list still carries the unreachable right-side members,
  // so the proposal covers each side's members per component.
  const trees::Topology* left = p.net.switch_at(1).installed(kMc);
  ASSERT_NE(left, nullptr);
  for (graph::NodeId n : {0, 2, 3}) {
    EXPECT_EQ(*p.net.switch_at(n).installed(kMc), *left) << n;
  }
  EXPECT_TRUE(trees::is_forest(*left));
  EXPECT_TRUE(trees::connects(*left, {0, 1, 2}));
  // Right side likewise serves its local members.
  const trees::Topology* right = p.net.switch_at(5).installed(kMc);
  ASSERT_NE(right, nullptr);
  EXPECT_TRUE(trees::is_forest(*right));
  EXPECT_TRUE(trees::connects(*right, {5, 6, 7}));
  // The sides disagree, as they must.
  EXPECT_FALSE(*left == *right);
}

TEST(Partition, HealWithResyncReconcilesBothSides) {
  Partitioned p(/*resync=*/true);
  p.net.join(0, kMc, mc::McType::kSymmetric);
  p.net.run_to_quiescence();
  p.net.join(7, kMc, mc::McType::kSymmetric);
  p.net.run_to_quiescence();

  p.net.restore_link(p.bridge_a);
  p.net.run_to_quiescence();

  EXPECT_TRUE(p.net.converged(kMc));
  const trees::Topology agreed = p.net.agreed_topology(kMc);
  EXPECT_TRUE(trees::is_steiner_tree(agreed, {0, 1, 2, 5, 6, 7}));
  // Everyone sees the merged member list.
  EXPECT_EQ(p.net.switch_at(4).members(kMc)->all(),
            (std::vector<graph::NodeId>{0, 1, 2, 5, 6, 7}));
  EXPECT_GT(p.net.totals().sync_floodings, 0u);
}

TEST(Partition, HealWithResyncWhenOnlyOneSideChanged) {
  Partitioned p(/*resync=*/true);
  p.net.join(0, kMc, mc::McType::kSymmetric);  // left-side change only
  p.net.run_to_quiescence();
  p.net.restore_link(p.bridge_b);
  p.net.run_to_quiescence();
  EXPECT_TRUE(p.net.converged(kMc));
  EXPECT_TRUE(trees::is_steiner_tree(p.net.agreed_topology(kMc),
                                     {0, 1, 2, 5, 6}));
}

TEST(Partition, LeavesDuringPartitionMergeCorrectly) {
  Partitioned p(/*resync=*/true);
  // 2 leaves on the left; 5 leaves on the right; 4 joins on the right.
  p.net.leave(2, kMc);
  p.net.run_to_quiescence();
  p.net.leave(5, kMc);
  p.net.run_to_quiescence();
  p.net.join(4, kMc, mc::McType::kSymmetric);
  p.net.run_to_quiescence();

  p.net.restore_link(p.bridge_a);
  p.net.run_to_quiescence();
  EXPECT_TRUE(p.net.converged(kMc));
  EXPECT_EQ(p.net.switch_at(0).members(kMc)->all(),
            (std::vector<graph::NodeId>{1, 4, 6}));
}

TEST(Partition, WithoutResyncHealedSidesStayStale) {
  // Documents the gap the extension closes: without sync flooding, the
  // healed sides never exchange their partition-era histories.
  Partitioned p(/*resync=*/false);
  p.net.join(0, kMc, mc::McType::kSymmetric);
  p.net.run_to_quiescence();
  p.net.restore_link(p.bridge_a);
  p.net.run_to_quiescence();
  // Right side never learned of 0's join.
  EXPECT_FALSE(p.net.switch_at(6).members(kMc)->contains(0));
  EXPECT_FALSE(p.net.converged(kMc));
}

TEST(Partition, ResyncIsIdempotentOnHealthyNetworks) {
  // Restoring a non-partitioning link floods syncs that teach nobody
  // anything: no proposals, no topology churn.
  DgmcNetwork net(dumbbell(), resync_params(true),
                  mc::make_incremental_algorithm());
  for (graph::NodeId m : {1, 6}) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  const graph::LinkId bridge = net.physical().find_link(3, 4);
  net.fail_link(bridge);  // 0-7 still connects the sides
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  const auto before = net.totals();
  const trees::Topology tree_before = net.agreed_topology(kMc);
  net.restore_link(bridge);
  net.run_to_quiescence();
  EXPECT_GT(net.totals().sync_floodings, 0u);
  EXPECT_EQ(net.totals().computations, before.computations);
  EXPECT_EQ(net.agreed_topology(kMc), tree_before);
}

TEST(Partition, RandomChurnAcrossSplitAndHeal) {
  for (int seed = 1; seed <= 6; ++seed) {
    util::RngStream rng(seed);
    Partitioned p(/*resync=*/true);
    // Random membership churn on both sides while split.
    for (int i = 0; i < 4; ++i) {
      const graph::NodeId left =
          static_cast<graph::NodeId>(rng.index(4));       // 0..3
      const graph::NodeId right =
          static_cast<graph::NodeId>(4 + rng.index(4));   // 4..7
      for (graph::NodeId n : {left, right}) {
        if (p.net.switch_at(n).has_state(kMc) &&
            p.net.switch_at(n).members(kMc)->contains(n)) {
          p.net.leave(n, kMc);
        } else {
          p.net.join(n, kMc, mc::McType::kSymmetric);
        }
        p.net.run_to_quiescence();
      }
    }
    p.net.restore_link(p.bridge_a);
    p.net.run_to_quiescence();
    p.net.restore_link(p.bridge_b);
    p.net.run_to_quiescence();
    EXPECT_TRUE(p.net.converged(kMc)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dgmc::sim
