#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dgmc::graph {
namespace {

TEST(Dijkstra, LineGraphDistances) {
  const Graph g = line(5);
  const ShortestPaths sp = dijkstra(g, 0);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_DOUBLE_EQ(sp.dist[n], static_cast<double>(n));
  }
  EXPECT_EQ(sp.path_to(4), (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Dijkstra, PrefersCheaperWeightedPath) {
  // 0-1-2 costs 1+1=2; direct 0-2 costs 5.
  Graph g(3);
  g.add_link(0, 1, 1.0);
  g.add_link(1, 2, 1.0);
  g.add_link(0, 2, 5.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  EXPECT_EQ(sp.parent[2], 1);
}

TEST(Dijkstra, IgnoresDownLinks) {
  Graph g(3);
  g.add_link(0, 1);
  const LinkId direct = g.add_link(0, 2);
  g.add_link(1, 2);
  g.set_link_up(direct, false);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
}

TEST(Dijkstra, UnreachableNodes) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_TRUE(sp.reachable(1));
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_EQ(sp.parent[2], kInvalidNode);
  EXPECT_TRUE(sp.path_to(3).empty());
}

TEST(Dijkstra, CustomWeightFunction) {
  Graph g(3);
  g.add_link(0, 1, /*cost=*/10.0, /*delay=*/1.0);
  g.add_link(1, 2, /*cost=*/10.0, /*delay=*/1.0);
  g.add_link(0, 2, /*cost=*/1.0, /*delay=*/100.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0, cost_weight).dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0, delay_weight).dist[2], 2.0);
}

TEST(Dijkstra, DeterministicEqualCostTieBreak) {
  // Two equal-cost paths 0-1-3 and 0-2-3: the tie-break must pick the
  // lower-id parent at 3, identically for repeated runs.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  const ShortestPaths a = dijkstra(g, 0);
  const ShortestPaths b = dijkstra(g, 0);
  EXPECT_EQ(a.parent[3], b.parent[3]);
  EXPECT_EQ(a.parent[3], 1);
}

TEST(Connectivity, DetectsConnectedAndDisconnected) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  EXPECT_FALSE(is_connected(g));
  g.add_link(2, 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, DownLinkSplitsGraph) {
  Graph g = line(4);
  EXPECT_TRUE(is_connected(g));
  g.set_link_up(g.find_link(1, 2), false);
  EXPECT_FALSE(is_connected(g));
  const auto comp = components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Connectivity, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Diameter, LineAndRing) {
  EXPECT_DOUBLE_EQ(diameter_cost(line(5)), 4.0);
  EXPECT_DOUBLE_EQ(diameter_cost(ring(6)), 3.0);
}

TEST(FloodingDiameter, UsesDelaysPlusOverhead) {
  Graph g = line(4);  // 3 hops, unit delay each
  EXPECT_DOUBLE_EQ(flooding_diameter(g, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(flooding_diameter(g, 0.5), 4.5);
  g.set_uniform_delay(2.0);
  EXPECT_DOUBLE_EQ(flooding_diameter(g, 0.0), 6.0);
}

TEST(FloodingDiameter, StarIsTwoHops) {
  const Graph g = star(10);
  EXPECT_DOUBLE_EQ(flooding_diameter(g, 0.0), 2.0);
}

TEST(DijkstraProperty, TriangleInequalityOnRandomGraphs) {
  util::RngStream rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_connected(30, 3.0, rng);
    const ShortestPaths from0 = dijkstra(g, 0);
    for (NodeId u = 1; u < g.node_count(); ++u) {
      const ShortestPaths fromu = dijkstra(g, u);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_LE(from0.dist[v], from0.dist[u] + fromu.dist[v] + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace dgmc::graph
