#include "baselines/bruteforce.hpp"

#include <gtest/gtest.h>

#include "des/scheduler.hpp"

#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "util/rng.hpp"

namespace dgmc::baselines {
namespace {

BruteForceNetwork::Params test_params() {
  BruteForceNetwork::Params p;
  p.per_hop_overhead = 4e-6;
  p.computation_time = 10e-3;
  return p;
}

graph::Graph unit_delay(graph::Graph g) {
  g.set_uniform_delay(1e-6);
  return g;
}

TEST(BruteForce, SingleEventTriggersComputationAtEverySwitch) {
  const int n = 10;
  BruteForceNetwork net(unit_delay(graph::ring(n)), test_params(),
                        mc::make_from_scratch_algorithm());
  net.join(3);
  net.run_to_quiescence();
  // The §2 claim: one event, n computations, one flooding.
  EXPECT_EQ(net.totals().computations, static_cast<std::uint64_t>(n));
  EXPECT_EQ(net.totals().floodings, 1u);
  EXPECT_TRUE(net.converged());
}

TEST(BruteForce, SequentialEventsCostNComputationsEach) {
  const int n = 8;
  BruteForceNetwork net(unit_delay(graph::ring(n)), test_params(),
                        mc::make_from_scratch_algorithm());
  des::SimTime t = 0.0;
  for (graph::NodeId j : {0, 2, 5}) {
    net.scheduler().schedule_at(t, [&net, j] { net.join(j); });
    t += 1.0;
  }
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().computations, static_cast<std::uint64_t>(3 * n));
  EXPECT_TRUE(net.converged());
  EXPECT_TRUE(trees::is_steiner_tree(net.topology_at(0), {0, 2, 5}));
}

TEST(BruteForce, BurstCoalescesButStaysExpensive) {
  const int n = 12;
  BruteForceNetwork net(unit_delay(graph::grid(3, 4)), test_params(),
                        mc::make_from_scratch_algorithm());
  // Burst of 4 joins inside one computation window.
  for (graph::NodeId j : {0, 5, 7, 11}) {
    net.scheduler().schedule_at(1e-5 * (j + 1), [&net, j] { net.join(j); });
  }
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged());
  // At least one computation per switch; coalescing caps it well below
  // events x n.
  EXPECT_GE(net.totals().computations, static_cast<std::uint64_t>(n));
  EXPECT_LE(net.totals().computations, static_cast<std::uint64_t>(4 * n));
}

TEST(BruteForce, LeaveShrinksTopologyEverywhere) {
  BruteForceNetwork net(unit_delay(graph::line(6)), test_params(),
                        mc::make_from_scratch_algorithm());
  net.join(0);
  net.run_to_quiescence();
  net.join(5);
  net.run_to_quiescence();
  EXPECT_EQ(net.topology_at(3).edge_count(), 5u);
  net.leave(5);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged());
  EXPECT_TRUE(net.topology_at(3).empty());  // single member left
  EXPECT_EQ(net.members_at(2).all(), (std::vector<graph::NodeId>{0}));
}

TEST(BruteForce, AgreesWithValidSteinerTree) {
  util::RngStream rng(5);
  graph::Graph g = graph::random_connected(20, 3.0, rng);
  g.set_uniform_delay(1e-6);
  BruteForceNetwork net(std::move(g), test_params(),
                        mc::make_from_scratch_algorithm());
  const std::vector<graph::NodeId> members = {1, 7, 13, 19};
  des::SimTime t = 0.0;
  for (graph::NodeId m : members) {
    net.scheduler().schedule_at(t, [&net, m] { net.join(m); });
    t += 1.0;
  }
  net.run_to_quiescence();
  ASSERT_TRUE(net.converged());
  EXPECT_TRUE(trees::is_steiner_tree(net.topology_at(0), members));
}

}  // namespace
}  // namespace dgmc::baselines
