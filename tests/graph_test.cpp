#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace dgmc::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.link_count(), 0);
}

TEST(Graph, AddAndQueryLinks) {
  Graph g(4);
  const LinkId ab = g.add_link(0, 1, 2.0, 0.5);
  const LinkId bc = g.add_link(1, 2);
  EXPECT_EQ(g.link_count(), 2);
  EXPECT_EQ(g.link(ab).cost, 2.0);
  EXPECT_EQ(g.link(ab).delay, 0.5);
  EXPECT_TRUE(g.link(ab).up);
  EXPECT_EQ(g.find_link(0, 1), ab);
  EXPECT_EQ(g.find_link(1, 0), ab);  // undirected
  EXPECT_EQ(g.find_link(2, 1), bc);
  EXPECT_EQ(g.find_link(0, 2), kInvalidLink);
  EXPECT_FALSE(g.has_link(0, 3));
}

TEST(Graph, OtherEnd) {
  Graph g(3);
  const LinkId id = g.add_link(0, 2);
  EXPECT_EQ(g.other_end(id, 0), 2);
  EXPECT_EQ(g.other_end(id, 2), 0);
}

TEST(Graph, AdjacencyLists) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  EXPECT_EQ(g.links_of(0).size(), 3u);
  EXPECT_EQ(g.links_of(1).size(), 1u);
}

TEST(Graph, LinkUpDown) {
  Graph g(2);
  const LinkId id = g.add_link(0, 1);
  g.set_link_up(id, false);
  EXPECT_FALSE(g.link(id).up);
  g.set_link_up(id, true);
  EXPECT_TRUE(g.link(id).up);
}

TEST(Graph, DelayScaling) {
  Graph g(3);
  g.add_link(0, 1, 1.0, 2.0);
  g.add_link(1, 2, 1.0, 3.0);
  g.scale_delays(0.5);
  EXPECT_DOUBLE_EQ(g.link(0).delay, 1.0);
  EXPECT_DOUBLE_EQ(g.link(1).delay, 1.5);
  g.set_uniform_delay(7.0);
  EXPECT_DOUBLE_EQ(g.link(0).delay, 7.0);
  EXPECT_DOUBLE_EQ(g.link(1).delay, 7.0);
}

TEST(Graph, CopyIsIndependent) {
  Graph g(2);
  const LinkId id = g.add_link(0, 1);
  Graph copy = g;
  copy.set_link_up(id, false);
  EXPECT_TRUE(g.link(id).up);
  EXPECT_FALSE(copy.link(id).up);
}

TEST(GraphDeath, RejectsSelfLoopAndParallel) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_DEATH(g.add_link(1, 1), "self-loop");
  EXPECT_DEATH(g.add_link(1, 0), "parallel");
}

TEST(Edge, NormalizesEndpoints) {
  const Edge a(3, 1);
  const Edge b(1, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.a, 1);
  EXPECT_EQ(a.b, 3);
  EXPECT_EQ(EdgeHash{}(a), EdgeHash{}(b));
}

TEST(Edge, Ordering) {
  EXPECT_LT(Edge(0, 1), Edge(0, 2));
  EXPECT_LT(Edge(0, 5), Edge(1, 2));
}

}  // namespace
}  // namespace dgmc::graph
