// Snapshot-equivalence suite for the checkpoint-restore backtracking
// engine (DESIGN.md §9). The claims under test, in increasing order of
// strength:
//
//   1. CheckpointStack mechanics: pooling recycles snapshots, resync
//      pops abandoned-branch entries, restore is bit-identical.
//   2. A save/restore round-trip does not perturb an Executor: the
//      fingerprint stream after a restore equals the stream a
//      never-diverged run produces.
//   3. Exploration equivalence: over the whole scenario catalog,
//      checkpoint-based DFS at k in {1, 4, 16} returns results
//      equivalent to replay-based DFS (interval 0) — same violations,
//      same traces, same visited-state counts, same cutoffs. Only
//      stats.transitions (replay-step accounting) may differ.
//   4. The parallel frontier engine keeps the determinism contract:
//      replay-vs-checkpoint equivalent, and bit-identical (transitions
//      included) across jobs in {1, 8} at a fixed interval.
#include "check/checkpoint.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "check/explorer.hpp"

namespace dgmc::check {
namespace {

ScenarioSpec spec(const char* name, bool break_accept = false) {
  const ScenarioSpec* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  ScenarioSpec out = *s;
  out.params.dgmc.accept_stale_proposals = break_accept;
  return out;
}

/// Every scenario in the catalog; the equivalence tests sweep all of
/// them so no scenario-specific state (faults, crashes, hierarchy,
/// multiple MCs) escapes snapshot coverage.
std::vector<const char*> catalog() {
  std::vector<const char*> names;
  for (const ScenarioSpec& s : scenarios()) names.push_back(s.name.c_str());
  EXPECT_EQ(names.size(), 7u);
  return names;
}

SearchLimits limits_with(std::size_t interval, std::size_t depth = 8) {
  SearchLimits limits;
  limits.max_depth = depth;
  limits.checkpoint_interval = interval;
  return limits;
}

// --- 1. CheckpointStack mechanics -----------------------------------

TEST(CheckpointStack, MaybeSaveFollowsIntervalGrid) {
  Executor exec(spec("triangle-2join"));
  CheckpointPool pool;
  CheckpointStack st(/*interval=*/2, pool);
  ASSERT_TRUE(st.enabled());
  st.save(exec, 0);  // anchor
  st.maybe_save(exec, 1);
  EXPECT_EQ(st.size(), 1u);  // 1 % 2 != 0: no checkpoint
  st.maybe_save(exec, 2);
  EXPECT_EQ(st.size(), 2u);
  st.maybe_save(exec, 4);
  EXPECT_EQ(st.size(), 3u);
}

TEST(CheckpointStack, DisabledStackNeverSaves) {
  Executor exec(spec("triangle-2join"));
  CheckpointPool pool;
  CheckpointStack st(/*interval=*/0, pool);
  EXPECT_FALSE(st.enabled());
  st.maybe_save(exec, 0);
  st.maybe_save(exec, 8);
  EXPECT_EQ(st.size(), 0u);
}

TEST(CheckpointStack, ResyncPopsAbandonedEntriesIntoPool) {
  Executor exec(spec("triangle-2join"));
  CheckpointPool pool;
  CheckpointStack st(/*interval=*/1, pool);
  st.save(exec, 0);
  exec.step(0);
  st.save(exec, 1);
  exec.step(0);
  st.save(exec, 2);
  EXPECT_EQ(st.size(), 3u);
  EXPECT_EQ(pool.pooled(), 0u);

  EXPECT_EQ(st.resync_to(exec, 1), 1u);
  EXPECT_EQ(st.size(), 2u);
  EXPECT_EQ(pool.pooled(), 1u);  // the depth-2 entry was recycled

  // The recycled snapshot is reused, not reallocated.
  exec.step(0);
  st.save(exec, 2);
  EXPECT_EQ(pool.pooled(), 0u);

  st.clear();
  EXPECT_EQ(st.size(), 0u);
  EXPECT_EQ(pool.pooled(), 3u);
}

TEST(CheckpointStack, ResyncRestoresBitIdenticalState) {
  Executor exec(spec("triangle-join-leave"));
  (void)exec.check();
  CheckpointPool pool;
  CheckpointStack st(/*interval=*/4, pool);
  st.save(exec, 0);
  const std::uint64_t fp_root = exec.fingerprint();

  exec.step(0);
  (void)exec.check();
  exec.step(1);
  (void)exec.check();
  const std::uint64_t fp_deep = exec.fingerprint();

  EXPECT_EQ(st.resync_to(exec, 0), 0u);
  EXPECT_EQ(exec.fingerprint(), fp_root);

  // Re-taking the same branch reproduces the same state.
  exec.step(0);
  (void)exec.check();
  exec.step(1);
  (void)exec.check();
  EXPECT_EQ(exec.fingerprint(), fp_deep);
}

// --- 2. Fingerprint streams across save/restore ---------------------

// Walk the native schedule recording the fingerprint stream; rewind to
// a mid-path snapshot and re-walk. The post-restore stream must equal
// the original — the strongest per-state form of the §8 determinism
// contract under checkpointing.
TEST(CheckpointEquivalence, FingerprintStreamSurvivesSaveRestore) {
  const ScenarioSpec s = spec("triangle-join-leave");
  Executor exec(s);
  (void)exec.check();

  constexpr std::size_t kSteps = 20;
  constexpr std::size_t kSnapAt = 9;
  Executor::Snapshot snap;
  std::vector<std::uint64_t> stream;
  for (std::size_t i = 0; i < kSteps; ++i) {
    if (i == kSnapAt) exec.save(snap);
    ASSERT_FALSE(exec.done());
    exec.step(0);
    (void)exec.check();
    stream.push_back(exec.fingerprint());
  }

  exec.restore(snap);
  EXPECT_EQ(exec.fingerprint(), stream[kSnapAt - 1]);
  for (std::size_t i = kSnapAt; i < kSteps; ++i) {
    exec.step(0);
    (void)exec.check();
    EXPECT_EQ(exec.fingerprint(), stream[i]) << "step " << i;
  }
}

// Restoring must also rewind the enabled-action view, not just the
// network: after a restore the action list equals the pre-divergence
// list element for element.
TEST(CheckpointEquivalence, EnabledActionsIdenticalAfterRestore) {
  Executor exec(spec("diamond-link-fail"));
  (void)exec.check();
  exec.step(0);
  (void)exec.check();

  Executor::Snapshot snap;
  exec.save(snap);
  std::vector<std::string> before;
  for (const Executor::Action& a : exec.enabled()) {
    before.push_back(exec.describe(a));
  }

  exec.step(1);  // diverge
  (void)exec.check();
  exec.restore(snap);

  const std::vector<Executor::Action>& after = exec.enabled();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(exec.describe(after[i]), before[i]) << "action " << i;
  }
}

// --- 3. Serial exploration equivalence ------------------------------

TEST(CheckpointEquivalence, DfsMatchesReplayAcrossCatalogAndIntervals) {
  for (const char* name : catalog()) {
    const ScenarioSpec s = spec(name);
    const SearchResult base = explore_dfs(s, limits_with(0));
    for (std::size_t k : {1, 4, 16}) {
      const SearchResult r = explore_dfs(s, limits_with(k));
      EXPECT_TRUE(equivalent_results(base, r))
          << name << " diverged at checkpoint interval " << k;
    }
  }
}

// config.mc_shards is a storage-layout knob (DESIGN.md §13): snapshots
// deep-copy the per-shard arenas, so checkpointed search through a
// sharded store must be fully bit-identical — transitions included —
// to the single-arena search, across the whole catalog.
TEST(CheckpointEquivalence, DfsInvariantAcrossMcShards) {
  for (const char* name : catalog()) {
    ScenarioSpec s = spec(name);
    const SearchResult base = explore_dfs(s, limits_with(4));
    for (const int shards : {4, 16}) {
      s.params.dgmc.mc_shards = shards;
      const SearchResult r = explore_dfs(s, limits_with(4));
      EXPECT_TRUE(equivalent_results(base, r, /*compare_transitions=*/true))
          << name << " mc_shards=" << shards;
    }
  }
}

TEST(CheckpointEquivalence, DelayBoundedMatchesReplay) {
  SearchLimits replay_limits = limits_with(0, /*depth=*/40);
  replay_limits.delay_budget = 2;
  SearchLimits ckpt_limits = limits_with(4, /*depth=*/40);
  ckpt_limits.delay_budget = 2;
  for (const char* name : {"triangle-join-leave", "triangle-2join"}) {
    const ScenarioSpec s = spec(name);
    const SearchResult base = explore_delay_bounded(s, replay_limits);
    const SearchResult r = explore_delay_bounded(s, ckpt_limits);
    EXPECT_TRUE(equivalent_results(base, r)) << name;
  }
}

// A deliberately broken protocol: every interval must find the *same*
// counterexample (oracle, detail, and choice trace), because both
// modes enumerate the identical search order.
TEST(CheckpointEquivalence, BrokenAcceptCounterexampleIdentical) {
  const ScenarioSpec broken =
      spec("triangle-join-leave", /*break_accept=*/true);
  const SearchResult base = explore_dfs(broken, limits_with(0, 14));
  ASSERT_TRUE(base.violation.has_value());
  EXPECT_EQ(base.violation->oracle, "install-monotone");
  for (std::size_t k : {1, 4, 16}) {
    const SearchResult r = explore_dfs(broken, limits_with(k, 14));
    ASSERT_TRUE(r.violation.has_value()) << "interval " << k;
    EXPECT_EQ(r.violation->oracle, base.violation->oracle);
    EXPECT_EQ(r.violation->detail, base.violation->detail);
    EXPECT_EQ(r.trace.choices, base.trace.choices);
  }
}

// Checkpointing must not change what the transitions counter *means*
// for fixed-mode comparisons: two identical checkpoint runs are fully
// bit-identical, transitions included.
TEST(CheckpointEquivalence, RepeatedCheckpointRunsBitIdentical) {
  const ScenarioSpec s = spec("line4-concurrent-join");
  const SearchResult a = explore_dfs(s, limits_with(4));
  const SearchResult b = explore_dfs(s, limits_with(4));
  EXPECT_TRUE(equivalent_results(a, b, /*compare_transitions=*/true));
}

// The point of the engine: checkpoint mode must replay *fewer* steps
// than replay mode on a backtracking-heavy search.
TEST(CheckpointEquivalence, CheckpointModeReplaysFewerTransitions) {
  const ScenarioSpec s = spec("triangle-2join");
  const SearchResult base = explore_dfs(s, limits_with(0, 10));
  const SearchResult r = explore_dfs(s, limits_with(4, 10));
  EXPECT_LT(r.stats.transitions, base.stats.transitions / 2);
}

// --- 4. Parallel exploration equivalence ----------------------------

TEST(CheckpointEquivalence, ParallelDfsMatchesReplayAndJobCounts) {
  for (const char* name :
       {"triangle-2join", "triangle-join-leave", "diamond-link-fail"}) {
    const ScenarioSpec s = spec(name);
    const SearchResult base =
        explore_dfs_parallel(s, limits_with(0), /*jobs=*/1);
    for (std::size_t k : {1, 4, 16}) {
      SearchResult at_jobs1;
      for (std::size_t jobs : {1, 8}) {
        const SearchResult r = explore_dfs_parallel(s, limits_with(k), jobs);
        EXPECT_TRUE(equivalent_results(base, r))
            << name << " k=" << k << " jobs=" << jobs;
        if (jobs == 1) {
          at_jobs1 = r;
        } else {
          // Fixed interval: the job count must not even perturb the
          // replay-step accounting.
          EXPECT_TRUE(
              equivalent_results(at_jobs1, r, /*compare_transitions=*/true))
              << name << " k=" << k << " jobs 1 vs 8";
        }
      }
    }
  }
}

TEST(CheckpointEquivalence, ParallelBrokenAcceptIdenticalAcrossModes) {
  const ScenarioSpec broken =
      spec("triangle-join-leave", /*break_accept=*/true);
  const SearchResult base =
      explore_dfs_parallel(broken, limits_with(0, 14), /*jobs=*/1);
  ASSERT_TRUE(base.violation.has_value());
  for (std::size_t jobs : {1, 8}) {
    const SearchResult r =
        explore_dfs_parallel(broken, limits_with(4, 14), jobs);
    ASSERT_TRUE(r.violation.has_value()) << "jobs " << jobs;
    EXPECT_EQ(r.violation->oracle, base.violation->oracle);
    EXPECT_EQ(r.violation->detail, base.violation->detail);
    EXPECT_EQ(r.trace.choices, base.trace.choices);
  }
}

}  // namespace
}  // namespace dgmc::check
