#include "sim/dataplane.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {
namespace {

constexpr mc::McId kMc = 0;

DgmcNetwork::Params fast_params() {
  DgmcNetwork::Params p;
  p.per_hop_overhead = 4e-6;
  p.dgmc.computation_time = 1e-3;
  return p;
}

graph::Graph unit_delay(graph::Graph g) {
  g.set_uniform_delay(1e-6);
  return g;
}

TEST(DataPlane, DeliversToAllMembersOnConvergedSymmetricMc) {
  DgmcNetwork net(unit_delay(graph::grid(3, 4)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{4e-6});
  const std::vector<graph::NodeId> members = {0, 5, 11};
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  const auto id = dp.send(kMc, /*source=*/0);
  net.run_to_quiescence();
  EXPECT_TRUE(dp.delivered_to_all(id, members));
  const auto& r = dp.report(id);
  EXPECT_EQ(r.duplicates, 0u);  // converged tree: no redundant copies
  EXPECT_EQ(r.dead_drops, 0u);
}

TEST(DataPlane, EverySenderCanUseTheSymmetricTree) {
  util::RngStream rng(3);
  graph::Graph g = graph::random_connected(20, 3.0, rng);
  DgmcNetwork net(unit_delay(std::move(g)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  const std::vector<graph::NodeId> members = {2, 8, 14, 19};
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  for (graph::NodeId sender : members) {
    const auto id = dp.send(kMc, sender);
    net.run_to_quiescence();
    EXPECT_TRUE(dp.delivered_to_all(id, members)) << "sender " << sender;
  }
}

TEST(DataPlane, ReceiverOnlyTwoStageDeliveryFromNonMember) {
  DgmcNetwork net(unit_delay(graph::line(8)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  // Receivers at 4, 6; tree is the 4-5-6 segment.
  for (graph::NodeId r : {4, 6}) {
    net.join(r, kMc, mc::McType::kReceiverOnly, mc::MemberRole::kReceiver);
    net.run_to_quiescence();
  }
  // A source at switch 0 (never a member) sends: stage 1 unicasts
  // 0->4 (the contact), stage 2 covers the tree.
  const auto id = dp.send(kMc, 0);
  net.run_to_quiescence();
  EXPECT_TRUE(dp.delivered_to_all(id, {4, 6}));
  // 4 unicast hops + 2 tree hops.
  EXPECT_EQ(dp.report(id).hops, 6u);
}

TEST(DataPlane, UnknownMcAtSourceIsDropped) {
  DgmcNetwork net(unit_delay(graph::line(4)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  const auto id = dp.send(kMc, 1);
  net.run_to_quiescence();
  EXPECT_TRUE(dp.report(id).delivered_to.empty());
  EXPECT_EQ(dp.report(id).hops, 0u);
}

TEST(DataPlane, SingleMemberMcDeliversToSourceOnly) {
  DgmcNetwork net(unit_delay(graph::line(4)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  net.join(2, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  const auto id = dp.send(kMc, 2);
  net.run_to_quiescence();
  EXPECT_EQ(dp.report(id).delivered_to,
            (std::vector<graph::NodeId>{2}));
}

TEST(DataPlane, AsymmetricUnionWithCyclesDeliversOncePerSwitch) {
  DgmcNetwork net(unit_delay(graph::ring(6)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  // Two senders on opposite sides force a cyclic union topology.
  net.join(0, kMc, mc::McType::kAsymmetric, mc::MemberRole::kSender);
  net.run_to_quiescence();
  net.join(3, kMc, mc::McType::kAsymmetric, mc::MemberRole::kSender);
  net.run_to_quiescence();
  for (graph::NodeId r : {1, 4}) {
    net.join(r, kMc, mc::McType::kAsymmetric, mc::MemberRole::kReceiver);
    net.run_to_quiescence();
  }
  const auto id = dp.send(kMc, 0);
  net.run_to_quiescence();
  EXPECT_TRUE(dp.delivered_to_all(id, {1, 4}));
  // Per-switch dedup: duplicates counted, not delivered twice.
  const auto& delivered = dp.report(id).delivered_to;
  EXPECT_EQ(std::count(delivered.begin(), delivered.end(), 1), 1);
  EXPECT_EQ(std::count(delivered.begin(), delivered.end(), 4), 1);
}

TEST(DataPlane, PacketDuringReconfigurationMayLoseButLaterOnesRecover) {
  DgmcNetwork net(unit_delay(graph::ring(8)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  for (graph::NodeId m : {0, 2}) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  // Kick off a join and immediately send a packet mid-reconfiguration.
  net.join(5, kMc, mc::McType::kSymmetric);
  const auto during = dp.send(kMc, 0);
  net.run_to_quiescence();
  const auto after = dp.send(kMc, 0);
  net.run_to_quiescence();
  // The steady-state packet always reaches everyone.
  EXPECT_TRUE(dp.delivered_to_all(after, {0, 2, 5}));
  // The mid-burst packet reached at least the old tree's members.
  EXPECT_TRUE(dp.delivered_to_all(during, {0, 2}));
}

TEST(DataPlane, DeadLinkDropsAreCounted) {
  DgmcNetwork net(unit_delay(graph::ring(6)), fast_params(),
                  mc::make_incremental_algorithm());
  DataPlane dp(net, DataPlane::Params{});
  for (graph::NodeId m : {0, 1}) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  // Fail the tree link and send before the protocol repairs: the
  // forwarding hits the dead link and drops.
  const graph::LinkId link = net.physical().find_link(0, 1);
  net.fail_link(link);
  const auto id = dp.send(kMc, 0);
  net.run_to_quiescence();
  EXPECT_GE(dp.report(id).dead_drops, 1u);
  // After repair, delivery works again.
  const auto healed = dp.send(kMc, 0);
  net.run_to_quiescence();
  EXPECT_TRUE(dp.delivered_to_all(healed, {0, 1}));
}

}  // namespace
}  // namespace dgmc::sim
