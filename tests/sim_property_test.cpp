// Property tests: for randomized topologies, memberships and event
// timings, after the network quiesces every switch agrees on the same
// valid topology — the protocol's end-to-end safety invariant (the
// paper's omitted correctness proof, checked by simulation).
#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include <set>
#include <string>

#include "graph/generators.hpp"
#include "mc/validation.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {
namespace {

constexpr mc::McId kMc = 0;

struct PropertyCase {
  std::string label;
  mc::McType type;
  bool incremental;
  double per_hop_overhead;  // seconds
  des::SimTime tc;
  double spread_seconds;  // burst window
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  return info.param.label;
}

class ConvergenceProperty : public testing::TestWithParam<PropertyCase> {};

mc::MemberRole role_for(mc::McType type, bool first) {
  if (type == mc::McType::kAsymmetric) {
    return first ? mc::MemberRole::kBoth : mc::MemberRole::kReceiver;
  }
  return type == mc::McType::kReceiverOnly ? mc::MemberRole::kReceiver
                                           : mc::MemberRole::kBoth;
}

TEST_P(ConvergenceProperty, RandomWorkloadsConvergeToValidTopology) {
  const PropertyCase& pc = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::RngStream rng = util::RngStream::derive(seed, pc.label);
    const int n = 12 + static_cast<int>(rng.index(20));  // 12..31 switches
    graph::Graph g = graph::random_connected(n, 3.0, rng);
    g.set_uniform_delay(1 * des::kMicrosecond);

    DgmcNetwork::Params params;
    params.per_hop_overhead = pc.per_hop_overhead;
    params.dgmc.computation_time = pc.tc;
    DgmcNetwork net(std::move(g), params,
                    pc.incremental ? mc::make_incremental_algorithm()
                                   : mc::make_from_scratch_algorithm());

    // Seed members one at a time (always converges).
    const int initial = 2 + static_cast<int>(rng.index(3));
    const auto members = random_members(n, initial, rng);
    for (std::size_t i = 0; i < members.size(); ++i) {
      net.join(members[i], kMc, pc.type, role_for(pc.type, i == 0));
      net.run_to_quiescence();
    }
    ASSERT_TRUE(net.converged(kMc)) << pc.label << " seed=" << seed;

    // Conflicting burst.
    const int burst = 4 + static_cast<int>(rng.index(5));
    const auto events = bursty_membership(
        n, members, burst, pc.spread_seconds,
        role_for(pc.type, false), rng);
    const des::SimTime t0 = net.scheduler().now();
    for (const auto& e : events) {
      net.scheduler().schedule_at(t0 + e.at, [&net, e, &pc] {
        if (e.join) {
          net.join(e.node, kMc, pc.type, e.role);
        } else {
          net.leave(e.node, kMc);
        }
      });
    }
    net.run_to_quiescence();

    ASSERT_TRUE(net.converged(kMc)) << pc.label << " seed=" << seed;

    // Cross-check the agreed member list against ground truth.
    std::set<graph::NodeId> expected(members.begin(), members.end());
    for (const auto& e : events) {
      if (e.join) expected.insert(e.node);
      else expected.erase(e.node);
    }
    const auto got = net.switch_at(0).members(kMc)->all();
    EXPECT_EQ(std::set<graph::NodeId>(got.begin(), got.end()), expected)
        << pc.label << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, ConvergenceProperty,
    testing::Values(
        PropertyCase{"symmetric_compute_dominant_incremental",
                     mc::McType::kSymmetric, true, 4e-6, 10e-3, 1e-3},
        PropertyCase{"symmetric_compute_dominant_fromscratch",
                     mc::McType::kSymmetric, false, 4e-6, 10e-3, 1e-3},
        PropertyCase{"symmetric_comm_dominant", mc::McType::kSymmetric,
                     true, 5e-3, 1e-3, 10e-3},
        PropertyCase{"receiver_only_compute_dominant",
                     mc::McType::kReceiverOnly, true, 4e-6, 10e-3, 1e-3},
        PropertyCase{"asymmetric_compute_dominant",
                     mc::McType::kAsymmetric, true, 4e-6, 10e-3, 1e-3},
        PropertyCase{"symmetric_instant_events", mc::McType::kSymmetric,
                     true, 4e-6, 10e-3, 0.0},
        PropertyCase{"symmetric_slow_events", mc::McType::kSymmetric,
                     true, 4e-6, 1e-3, 1.0}),
    CaseName);

class LinkFailureProperty : public testing::TestWithParam<int> {};

TEST_P(LinkFailureProperty, FailuresDuringChurnStillConverge) {
  const int seed = GetParam();
  util::RngStream rng(seed);
  const int n = 16;
  // Ring + chords: stays connected after any single link failure.
  graph::Graph g = graph::ring(n);
  for (int i = 0; i < n / 2; i += 4) g.add_link(i, (i + n / 2) % n);
  g.set_uniform_delay(1 * des::kMicrosecond);

  DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 5e-3;
  DgmcNetwork net(std::move(g), params, mc::make_incremental_algorithm());

  const auto members = random_members(n, 5, rng);
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }

  // Fail a link the tree uses (if any) mid-burst.
  const trees::Topology tree = net.agreed_topology(kMc);
  ASSERT_FALSE(tree.edges().empty());
  const graph::Edge victim =
      tree.edges()[rng.index(tree.edges().size())];
  const graph::LinkId link = net.physical().find_link(victim.a, victim.b);

  const auto events = bursty_membership(n, members, 4, 2e-3,
                                        mc::MemberRole::kBoth, rng);
  const des::SimTime t0 = net.scheduler().now();
  for (const auto& e : events) {
    net.scheduler().schedule_at(t0 + e.at, [&net, e] {
      if (e.join) net.join(e.node, kMc, mc::McType::kSymmetric);
      else net.leave(e.node, kMc);
    });
  }
  net.scheduler().schedule_at(t0 + 1e-3, [&net, link] {
    net.fail_link(link);
  });
  net.run_to_quiescence();

  ASSERT_TRUE(net.converged(kMc)) << "seed=" << seed;
  EXPECT_FALSE(net.agreed_topology(kMc).contains(victim));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkFailureProperty,
                         testing::Range(1, 11));

}  // namespace
}  // namespace dgmc::sim
