#include "mc/member_list.hpp"

#include <gtest/gtest.h>

namespace dgmc::mc {
namespace {

TEST(MemberRole, BitmaskSemantics) {
  EXPECT_TRUE(has_role(MemberRole::kBoth, MemberRole::kSender));
  EXPECT_TRUE(has_role(MemberRole::kBoth, MemberRole::kReceiver));
  EXPECT_FALSE(has_role(MemberRole::kSender, MemberRole::kReceiver));
  EXPECT_EQ(MemberRole::kSender | MemberRole::kReceiver, MemberRole::kBoth);
}

TEST(MemberList, JoinLeaveBasics) {
  MemberList ml;
  EXPECT_TRUE(ml.empty());
  ml.join(3, MemberRole::kBoth);
  ml.join(1, MemberRole::kReceiver);
  EXPECT_EQ(ml.size(), 2u);
  EXPECT_TRUE(ml.contains(3));
  EXPECT_FALSE(ml.contains(2));
  ml.leave(3);
  EXPECT_FALSE(ml.contains(3));
  ml.leave(3);  // idempotent
  EXPECT_EQ(ml.size(), 1u);
}

TEST(MemberList, KeptSortedForCanonicalEquality) {
  MemberList a, b;
  a.join(5, MemberRole::kBoth);
  a.join(2, MemberRole::kBoth);
  b.join(2, MemberRole::kBoth);
  b.join(5, MemberRole::kBoth);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.all(), (std::vector<graph::NodeId>{2, 5}));
}

TEST(MemberList, RejoinMergesRoles) {
  MemberList ml;
  ml.join(4, MemberRole::kReceiver);
  ml.join(4, MemberRole::kSender);
  EXPECT_EQ(ml.size(), 1u);
  EXPECT_EQ(ml.role_of(4), MemberRole::kBoth);
}

TEST(MemberList, RoleOfAbsentIsNone) {
  MemberList ml;
  EXPECT_EQ(ml.role_of(9), MemberRole::kNone);
}

TEST(MemberList, SendersAndReceiversFiltered) {
  MemberList ml;
  ml.join(1, MemberRole::kSender);
  ml.join(2, MemberRole::kReceiver);
  ml.join(3, MemberRole::kBoth);
  EXPECT_EQ(ml.senders(), (std::vector<graph::NodeId>{1, 3}));
  EXPECT_EQ(ml.receivers(), (std::vector<graph::NodeId>{2, 3}));
  EXPECT_EQ(ml.all(), (std::vector<graph::NodeId>{1, 2, 3}));
}

TEST(MemberList, TypeNames) {
  EXPECT_STREQ(to_string(McType::kSymmetric), "symmetric");
  EXPECT_STREQ(to_string(McType::kReceiverOnly), "receiver-only");
  EXPECT_STREQ(to_string(McType::kAsymmetric), "asymmetric");
  EXPECT_STREQ(to_string(MemberRole::kBoth), "sender+receiver");
}

}  // namespace
}  // namespace dgmc::mc
