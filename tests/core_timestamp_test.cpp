#include "core/timestamp.hpp"

#include <gtest/gtest.h>

namespace dgmc::core {
namespace {

TEST(VectorTimestamp, StartsAtZero) {
  const VectorTimestamp t(4);
  EXPECT_EQ(t.size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t[i], 0u);
  EXPECT_EQ(t.total(), 0u);
}

TEST(VectorTimestamp, IncrementAndTotal) {
  VectorTimestamp t(3);
  t.increment(1);
  t.increment(1);
  t.increment(2);
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 1u);
  EXPECT_EQ(t.total(), 3u);
}

TEST(VectorTimestamp, DominatesIsComponentwise) {
  VectorTimestamp a(3), b(3);
  a.increment(0);
  a.increment(1);
  b.increment(1);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_TRUE(a.dominates(a));  // reflexive
}

TEST(VectorTimestamp, StrictDominanceExcludesEquality) {
  VectorTimestamp a(2), b(2);
  a.increment(0);
  b.increment(0);
  EXPECT_FALSE(a.strictly_dominates(b));
  a.increment(1);
  EXPECT_TRUE(a.strictly_dominates(b));
}

TEST(VectorTimestamp, IncomparablePairs) {
  // The partial order: (1,0) and (0,1) are concurrent.
  VectorTimestamp a(2), b(2);
  a.increment(0);
  b.increment(1);
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_NE(a, b);
}

TEST(VectorTimestamp, MergeMaxIsLeastUpperBound) {
  VectorTimestamp a(3), b(3);
  a.increment(0);
  a.increment(0);
  b.increment(0);
  b.increment(2);
  a.merge_max(b);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 0u);
  EXPECT_EQ(a[2], 1u);
  // The merge dominates both inputs.
  EXPECT_TRUE(a.dominates(b));
}

TEST(VectorTimestamp, MergeIsIdempotentAndCommutative) {
  VectorTimestamp a(3), b(3);
  a.increment(0);
  b.increment(1);
  VectorTimestamp ab = a;
  ab.merge_max(b);
  VectorTimestamp ba = b;
  ba.merge_max(a);
  EXPECT_EQ(ab, ba);
  VectorTimestamp again = ab;
  again.merge_max(b);
  EXPECT_EQ(again, ab);
}

TEST(VectorTimestamp, EqualityAndToString) {
  VectorTimestamp a(3), b(3);
  EXPECT_EQ(a, b);
  a.increment(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "(0,0,1)");
  EXPECT_EQ(VectorTimestamp(0).to_string(), "()");
}

TEST(VectorTimestamp, DominanceIsTransitiveOnSamples) {
  VectorTimestamp a(3), b(3), c(3);
  a.increment(0);
  a.increment(1);
  a.increment(2);
  b.increment(0);
  b.increment(1);
  c.increment(0);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_TRUE(b.dominates(c));
  EXPECT_TRUE(a.dominates(c));
}

}  // namespace
}  // namespace dgmc::core
