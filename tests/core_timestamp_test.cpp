#include "core/timestamp.hpp"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/codec.hpp"
#include "core/mc_lsa.hpp"

namespace dgmc::core {
namespace {

TEST(VectorTimestamp, StartsAtZero) {
  const VectorTimestamp t(4);
  EXPECT_EQ(t.size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t[i], 0u);
  EXPECT_EQ(t.total(), 0u);
}

TEST(VectorTimestamp, IncrementAndTotal) {
  VectorTimestamp t(3);
  t.increment(1);
  t.increment(1);
  t.increment(2);
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 1u);
  EXPECT_EQ(t.total(), 3u);
}

TEST(VectorTimestamp, DominatesIsComponentwise) {
  VectorTimestamp a(3), b(3);
  a.increment(0);
  a.increment(1);
  b.increment(1);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_TRUE(a.dominates(a));  // reflexive
}

TEST(VectorTimestamp, StrictDominanceExcludesEquality) {
  VectorTimestamp a(2), b(2);
  a.increment(0);
  b.increment(0);
  EXPECT_FALSE(a.strictly_dominates(b));
  a.increment(1);
  EXPECT_TRUE(a.strictly_dominates(b));
}

TEST(VectorTimestamp, IncomparablePairs) {
  // The partial order: (1,0) and (0,1) are concurrent.
  VectorTimestamp a(2), b(2);
  a.increment(0);
  b.increment(1);
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_NE(a, b);
}

TEST(VectorTimestamp, MergeMaxIsLeastUpperBound) {
  VectorTimestamp a(3), b(3);
  a.increment(0);
  a.increment(0);
  b.increment(0);
  b.increment(2);
  a.merge_max(b);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 0u);
  EXPECT_EQ(a[2], 1u);
  // The merge dominates both inputs.
  EXPECT_TRUE(a.dominates(b));
}

TEST(VectorTimestamp, MergeIsIdempotentAndCommutative) {
  VectorTimestamp a(3), b(3);
  a.increment(0);
  b.increment(1);
  VectorTimestamp ab = a;
  ab.merge_max(b);
  VectorTimestamp ba = b;
  ba.merge_max(a);
  EXPECT_EQ(ab, ba);
  VectorTimestamp again = ab;
  again.merge_max(b);
  EXPECT_EQ(again, ab);
}

TEST(VectorTimestamp, EqualityAndToString) {
  VectorTimestamp a(3), b(3);
  EXPECT_EQ(a, b);
  a.increment(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "(0,0,1)");
  EXPECT_EQ(VectorTimestamp(0).to_string(), "()");
}

// --- Small-buffer optimization (SBO) boundary ------------------------

// kInlineCapacity components live inside the object; one more forces
// the heap block. All semantics must be identical on both sides.
TEST(VectorTimestampSbo, InlineHeapBoundary) {
  const int k = VectorTimestamp::kInlineCapacity;
  VectorTimestamp at(k), over(k + 1);
  EXPECT_TRUE(at.is_inline());
  EXPECT_FALSE(over.is_inline());
  for (int i = 0; i < k; ++i) at.increment(i);
  for (int i = 0; i < k + 1; ++i) over.increment(i);
  EXPECT_EQ(at.total(), static_cast<std::uint64_t>(k));
  EXPECT_EQ(over.total(), static_cast<std::uint64_t>(k + 1));
  EXPECT_EQ(at[k - 1], 1u);
  EXPECT_EQ(over[k], 1u);
}

TEST(VectorTimestampSbo, CopySemanticsOnBothSides) {
  const int k = VectorTimestamp::kInlineCapacity;
  for (int n : {k, k + 1}) {
    VectorTimestamp a(n);
    a.increment(0);
    a.increment(n - 1);
    VectorTimestamp b = a;
    EXPECT_EQ(a, b);
    b.increment(1);  // a heap copy must be deep, not aliased
    EXPECT_NE(a, b);
    EXPECT_EQ(a[1], 0u);
    a = b;
    EXPECT_EQ(a, b);
  }
}

TEST(VectorTimestampSbo, MoveTransfersValueAndEmptiesSource) {
  const int k = VectorTimestamp::kInlineCapacity;
  for (int n : {k, k + 1}) {
    VectorTimestamp a(n);
    a.increment(n - 1);
    const VectorTimestamp expect = a;
    VectorTimestamp moved = std::move(a);
    EXPECT_EQ(moved, expect);
    EXPECT_EQ(a.size(), 0);  // moved-from: empty, safely destructible
    VectorTimestamp assigned(2);
    assigned = std::move(moved);
    EXPECT_EQ(assigned, expect);
  }
}

TEST(VectorTimestampSbo, SelfMergeAndSelfDominanceAreIdentity) {
  const int k = VectorTimestamp::kInlineCapacity;
  for (int n : {k, k + 1}) {
    VectorTimestamp a(n);
    a.increment(0);
    a.increment(n - 1);
    const VectorTimestamp before = a;
    a.merge_max(a);  // aliasing self-merge must not corrupt
    EXPECT_EQ(a, before);
    EXPECT_TRUE(a.dominates(a));
    a = a;  // self-assignment
    EXPECT_EQ(a, before);
  }
}

TEST(VectorTimestampSbo, FromCountsMatchesIncrementConstruction) {
  const int k = VectorTimestamp::kInlineCapacity;
  for (int n : {k, k + 1}) {
    std::vector<std::uint32_t> counts(static_cast<std::size_t>(n));
    VectorTimestamp manual(n);
    for (int i = 0; i < n; ++i) {
      counts[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i * 7);
      for (int r = 0; r < i * 7; ++r) manual.increment(i);
    }
    const VectorTimestamp built = VectorTimestamp::from_counts(counts);
    EXPECT_EQ(built, manual);
    EXPECT_EQ(built.is_inline(), n <= k);
  }
}

// Codec round-trip across the boundary: the decode path fills the
// timestamp in place (no staging vector), so it must land on the right
// side of the SBO split and carry the exact components.
TEST(VectorTimestampSbo, CodecRoundTripAcrossBoundary) {
  const int k = VectorTimestamp::kInlineCapacity;
  for (int n : {k - 1, k, k + 1}) {
    McLsa lsa;
    lsa.source = 0;
    lsa.event = McEventType::kJoin;
    lsa.mc = 1;
    lsa.stamp = VectorTimestamp(n);
    for (int i = 0; i < n; ++i) {
      lsa.stamp.set(i, static_cast<std::uint32_t>(1000 + i));
    }
    const std::optional<McLsa> back = decode_mc_lsa(encode(lsa));
    ASSERT_TRUE(back.has_value()) << "n=" << n;
    EXPECT_EQ(back->stamp, lsa.stamp) << "n=" << n;
    EXPECT_EQ(back->stamp.is_inline(), n <= k);
  }
}

TEST(VectorTimestamp, DominanceIsTransitiveOnSamples) {
  VectorTimestamp a(3), b(3), c(3);
  a.increment(0);
  a.increment(1);
  a.increment(2);
  b.increment(0);
  b.increment(1);
  c.increment(0);
  EXPECT_TRUE(a.dominates(b));
  EXPECT_TRUE(b.dominates(c));
  EXPECT_TRUE(a.dominates(c));
}

}  // namespace
}  // namespace dgmc::core
