// Survival under an unreliable network: seeded fault storms combining
// message loss, jitter, link flaps and switch crash/recovery, with the
// reliable (ack + retransmit) flooding mode keeping the protocol
// convergent. The same storm without reliability must fail — that
// contrast is what proves the ack path is load-bearing rather than
// decorative.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {
namespace {

DgmcNetwork::Params robust_params() {
  DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 1e-3;
  params.dgmc.partition_resync = true;
  params.dual_link_detection = true;
  return params;
}

// --- Crash / recovery semantics (deterministic, no random faults) ---

TEST(CrashRecovery, CrashWipesStateAndResyncRestoresIt) {
  graph::Graph g = graph::ring(8);
  g.set_uniform_delay(1e-6);
  DgmcNetwork net(std::move(g), robust_params(),
                  mc::make_incremental_algorithm());

  for (graph::NodeId n : {1, 3, 5}) {
    net.join(n, 0, mc::McType::kSymmetric);
  }
  net.run_to_quiescence();
  ASSERT_TRUE(net.converged(0));

  net.crash_switch(3);
  EXPECT_FALSE(net.switch_alive(3));
  EXPECT_FALSE(net.switch_at(3).has_state(0));  // volatile state is gone
  EXPECT_EQ(net.switch_at(3).counters().crashes, 1u);
  net.run_to_quiescence();
  // Survivors repaired around the corpse; 3 is still on their member
  // lists (it never left — it died).
  ASSERT_NE(net.switch_at(1).members(0), nullptr);
  EXPECT_TRUE(net.switch_at(1).members(0)->contains(3));

  net.restart_switch(3);
  EXPECT_TRUE(net.switch_alive(3));
  net.run_to_quiescence();

  EXPECT_TRUE(net.quiescent());
  EXPECT_TRUE(net.converged(0));
  // The reborn switch re-learned everything from its neighbors' syncs:
  // the member list (including itself), and a tree that reaches it
  // again (its recovery join reopened the proposal gate).
  ASSERT_TRUE(net.switch_at(3).has_state(0));
  const auto members = net.switch_at(3).members(0)->all();
  EXPECT_EQ(std::set<graph::NodeId>(members.begin(), members.end()),
            (std::set<graph::NodeId>{1, 3, 5}));
  EXPECT_GT(net.totals().sync_floodings, 0u);
}

TEST(CrashRecovery, CrashCancelsInFlightComputation) {
  graph::Graph g = graph::ring(4);
  g.set_uniform_delay(1e-6);
  DgmcNetwork net(std::move(g), robust_params(),
                  mc::make_incremental_algorithm());

  // The join starts a computation (free CPU, event path); the crash
  // lands before it finishes, so the completion event must be reclaimed
  // and nothing may be flooded or installed.
  net.join(1, 0, mc::McType::kSymmetric);
  net.crash_switch(1);
  EXPECT_GE(net.switch_at(1).counters().computations_withdrawn, 1u);
  net.run_to_quiescence();

  EXPECT_TRUE(net.quiescent());
  for (graph::NodeId n = 0; n < 4; ++n) {
    EXPECT_FALSE(net.switch_at(n).has_state(0)) << n;
  }
}

TEST(CrashRecovery, WithoutResyncARestartedMemberStaysLost) {
  graph::Graph g = graph::ring(6);
  g.set_uniform_delay(1e-6);
  DgmcNetwork::Params params = robust_params();
  params.dgmc.partition_resync = false;  // the knob under test
  DgmcNetwork net(std::move(g), params, mc::make_incremental_algorithm());

  net.join(1, 0, mc::McType::kSymmetric);
  net.join(3, 0, mc::McType::kSymmetric);
  net.run_to_quiescence();
  ASSERT_TRUE(net.converged(0));

  net.crash_switch(3);
  net.run_to_quiescence();
  net.restart_switch(3);
  net.run_to_quiescence();

  // Nobody taught the reborn switch anything: it holds no MC state,
  // while the others still list it as a member of a tree that no longer
  // reaches it. Divergence — which is exactly why the resync extension
  // exists (compare CrashWipesStateAndResyncRestoresIt).
  EXPECT_FALSE(net.switch_at(3).has_state(0));
  ASSERT_NE(net.switch_at(1).members(0), nullptr);
  EXPECT_TRUE(net.switch_at(1).members(0)->contains(3));
  EXPECT_FALSE(net.converged(0));
}

// --- The storm (acceptance scenario) ---

// 32 switches, 2-edge-connected: a ring plus 8 cross-chords.
graph::Graph chaos_graph() {
  graph::Graph g = graph::ring(32);
  for (int i = 0; i <= 14; i += 2) g.add_link(i, i + 16);
  g.set_uniform_delay(1e-6);
  return g;
}

struct StormOutcome {
  bool converged_mc0 = false;
  bool converged_mc1 = false;
  bool quiescent = false;
  std::uint64_t retransmissions = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t drops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t sync_floodings = 0;
};

// Drives the identical seeded storm with or without the reliable
// flooding mode: >= 10% i.i.d. loss plus a burst-loss layer and
// jitter, 3 link flaps, 2 switch crash/restart cycles, and 24
// join/leave events on two MCs. Deterministic per (storm_seed).
StormOutcome run_storm(bool reliable, std::uint64_t storm_seed) {
  DgmcNetwork::Params params = robust_params();
  params.reliable.enabled = reliable;
  params.reliable.initial_rto = 2e-4;  // RTT is ~5e-5 with max jitter
  params.reliable.backoff = 2.0;
  params.reliable.max_retransmits = 12;
  DgmcNetwork net(chaos_graph(), params, mc::make_incremental_algorithm());

  fault::FaultPlan plan;
  plan.iid_loss = 0.12;
  plan.use_burst = true;
  plan.burst.p_good_to_bad = 0.002;
  plan.burst.p_bad_to_good = 0.2;
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  plan.max_extra_delay = 2e-5;
  plan.flaps = {
      {5, 0.040, 0.090},    // ring link 5-6
      {33, 0.060, 0.140},   // chord 2-18
      {38, 0.100, 0.180},   // chord 12-28
  };
  plan.crashes = {
      {7, 0.050, 0.150},
      {20, 0.120, 0.200},
  };
  net.install_faults(plan, storm_seed);

  // Seed membership, then 24 scheduled join/leave decisions spread over
  // the storm window. Join-vs-leave is decided at fire time from the
  // local switch's own view, so the storm self-adapts to lost events.
  for (graph::NodeId n : {0, 4, 8, 12}) net.join(n, 0, mc::McType::kSymmetric);
  for (graph::NodeId n : {1, 9, 17, 25}) {
    net.join(n, 1, mc::McType::kSymmetric);
  }
  util::RngStream churn(storm_seed ^ 0x5EEDu);
  for (int i = 0; i < 24; ++i) {
    const double when = 0.010 * (i + 1);
    const graph::NodeId node = static_cast<graph::NodeId>(churn.index(32));
    const mc::McId mcid = static_cast<mc::McId>(churn.index(2));
    net.scheduler().schedule_at(when, [&net, node, mcid] {
      if (!net.switch_alive(node)) return;  // dead switches have no users
      const mc::MemberList* m = net.switch_at(node).members(mcid);
      if (m != nullptr && m->contains(node)) {
        net.leave(node, mcid);
      } else {
        net.join(node, mcid, mc::McType::kSymmetric);
      }
    });
  }

  net.run_to_quiescence();

  // Heal phase: every scheduled fault has a matching recovery, but a
  // lossy run can strand state — make recovery explicit, then let the
  // network settle once more.
  for (graph::NodeId n = 0; n < net.size(); ++n) {
    if (!net.switch_alive(n)) net.restart_switch(n);
  }
  for (graph::LinkId l = 0; l < net.physical().link_count(); ++l) {
    if (!net.physical().link(l).up) net.restore_link(l);
  }
  net.run_to_quiescence();

  StormOutcome out;
  out.converged_mc0 = net.converged(0);
  out.converged_mc1 = net.converged(1);
  out.quiescent = net.quiescent();
  out.retransmissions = net.transport().retransmissions();
  out.give_ups = net.transport().give_ups();
  out.drops = net.faults()->drops();
  out.crashes = net.switch_at(7).counters().crashes +
                net.switch_at(20).counters().crashes;
  out.sync_floodings = net.totals().sync_floodings;
  return out;
}

constexpr std::uint64_t kStormSeed = 2026;

TEST(ChaosStorm, ConvergesWithReliableFlooding) {
  const StormOutcome out = run_storm(/*reliable=*/true, kStormSeed);
  // The storm actually stormed…
  EXPECT_GT(out.drops, 0u);
  EXPECT_GT(out.retransmissions, 0u);
  EXPECT_EQ(out.crashes, 2u);
  EXPECT_GT(out.sync_floodings, 0u);
  // …and the protocol still agreed on one topology per connection.
  EXPECT_TRUE(out.quiescent);
  EXPECT_TRUE(out.converged_mc0);
  EXPECT_TRUE(out.converged_mc1);
}

TEST(ChaosStorm, SameStormWithoutReliabilityDiverges) {
  const StormOutcome out = run_storm(/*reliable=*/false, kStormSeed);
  EXPECT_GT(out.drops, 0u);
  EXPECT_EQ(out.retransmissions, 0u);  // nothing fights the loss
  // Unrecovered LSA loss must leave at least one connection
  // unconverged: the paper's protocol is correct only on a lossless
  // flooding service, and this is the experiment that shows it.
  EXPECT_FALSE(out.converged_mc0 && out.converged_mc1);
}

TEST(ChaosStorm, StormIsDeterministicPerSeed) {
  const StormOutcome a = run_storm(/*reliable=*/true, kStormSeed);
  const StormOutcome b = run_storm(/*reliable=*/true, kStormSeed);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.sync_floodings, b.sync_floodings);
  EXPECT_EQ(a.converged_mc0, b.converged_mc0);
  EXPECT_EQ(a.converged_mc1, b.converged_mc1);
}

}  // namespace
}  // namespace dgmc::sim
