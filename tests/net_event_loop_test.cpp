// net::EventLoop — the wall-clock rt::Executor. These tests touch real
// time and real fds, so assertions use generous margins (CI runners
// jitter); exact-timing protocol behavior is tested under the DES
// backend instead.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "net/event_loop.hpp"

namespace dgmc::net {
namespace {

TEST(NetEventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(0.03, [&] { order.push_back(3); });
  loop.schedule_after(0.01, [&] { order.push_back(1); });
  loop.schedule_after(0.02, [&] {
    order.push_back(2);
  });
  loop.schedule_after(0.04, [&] {
    order.push_back(4);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.timers_fired(), 4u);
}

TEST(NetEventLoop, EqualDeadlinesFireInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.schedule_after(0.01, [&order, i] { order.push_back(i); });
  }
  loop.schedule_after(0.02, [&] { loop.stop(); });
  loop.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(NetEventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const rt::TimerId id = loop.schedule_after(0.01, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.schedule_after(0.03, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(NetEventLoop, NowAdvancesMonotonically) {
  EventLoop loop;
  const rt::Time t0 = loop.now();
  rt::Time t1 = 0.0;
  loop.schedule_after(0.02, [&] {
    t1 = loop.now();
    loop.stop();
  });
  loop.run();
  EXPECT_GE(t1 - t0, 0.015);  // slept at least most of the delay
  EXPECT_GE(loop.now(), t1);
}

TEST(NetEventLoop, TimerCallbackCanReschedule) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks >= 5) {
      loop.stop();
      return;
    }
    loop.schedule_after(0.002, [&tick] { tick(); });
  };
  loop.schedule_after(0.002, [&tick] { tick(); });
  loop.run();
  EXPECT_EQ(ticks, 5);
}

TEST(NetEventLoop, FdReadinessDispatches) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_DGRAM, 0, fds), 0);
  std::string got;
  loop.add_fd(fds[0], [&] {
    char buf[16];
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n > 0) got.assign(buf, static_cast<std::size_t>(n));
    loop.stop();
  });
  loop.schedule_after(0.005, [&] {
    [[maybe_unused]] const ssize_t n = ::write(fds[1], "ping", 4);
  });
  // Backstop so a dispatch bug fails the test instead of hanging it.
  loop.schedule_after(1.0, [&] { loop.stop(); });
  loop.run();
  loop.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(got, "ping");
}

TEST(NetEventLoop, PostFromAnotherThreadWakesLoop) {
  EventLoop loop;
  bool posted_ran = false;
  std::thread poster([&] {
    loop.post([&] {
      posted_ran = true;
      loop.stop();
    });
  });
  // No timers armed: the loop would block in epoll_wait forever if the
  // eventfd wakeup were broken; backstop keeps the failure bounded.
  loop.schedule_after(2.0, [&] { loop.stop(); });
  loop.run();
  poster.join();
  EXPECT_TRUE(posted_ran);
}

TEST(NetEventLoop, StopFromSignalPathStopsLoop) {
  EventLoop loop;
  // Call the async-signal-safe path directly (installing a real signal
  // handler in a test binary interferes with gtest's own handling).
  // The stopper may win the race and fire before run() even starts —
  // a signal stop must stick either way.
  std::thread stopper([&] { loop.request_stop_from_signal(); });
  loop.schedule_after(2.0, [&] { loop.stop(); });
  loop.run();
  stopper.join();
  EXPECT_LT(loop.now(), 1.5);  // stopped well before the backstop
}

TEST(NetEventLoop, SignalStopBeforeRunIsNotLost) {
  EventLoop loop;
  // A daemon can catch SIGTERM during setup, before it reaches run().
  // stop() only ends the current run, but a signal stop is terminal.
  loop.request_stop_from_signal();
  bool fired = false;
  loop.schedule_after(0.001, [&] { fired = true; });
  EXPECT_EQ(loop.run(), 0u);
  EXPECT_FALSE(fired);
  EXPECT_LT(loop.now(), 0.5);
}

}  // namespace
}  // namespace dgmc::net
