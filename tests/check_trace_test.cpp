#include "check/trace.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace dgmc::check {
namespace {

class TraceFile : public ::testing::Test {
 protected:
  std::string path() const {
    return ::testing::TempDir() + "check_trace_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".trace";
  }
  void TearDown() override { std::remove(path().c_str()); }
  void write(const std::string& content) {
    std::ofstream out(path());
    out << content;
  }
};

TEST_F(TraceFile, RoundTripsAllFields) {
  Trace t;
  t.scenario = "triangle-join-leave";
  t.accept_stale_proposals = true;
  t.dropped_injections = {2};
  t.choices = {0, 3, 1, 0, 7};
  ASSERT_TRUE(save_trace(t, path(), {"first", "", "third"}));

  std::string error;
  const auto loaded = load_trace(path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->scenario, t.scenario);
  EXPECT_EQ(loaded->accept_stale_proposals, true);
  EXPECT_EQ(loaded->dropped_injections, t.dropped_injections);
  EXPECT_EQ(loaded->choices, t.choices);
}

TEST_F(TraceFile, LoadsHandWrittenFileWithComments) {
  write(
      "# dgmc_check trace v1\n"
      "scenario triangle-2join\n"
      "\n"
      "0  # inject join\n"
      "2\n"
      "  1 \n");
  std::string error;
  const auto loaded = load_trace(path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->scenario, "triangle-2join");
  EXPECT_FALSE(loaded->accept_stale_proposals);
  EXPECT_EQ(loaded->choices, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST_F(TraceFile, RejectsMalformedInput) {
  std::string error;
  write("scenario x\nnot-a-number\n");
  EXPECT_FALSE(load_trace(path(), &error).has_value());
  EXPECT_NE(error.find("expected choice index"), std::string::npos);

  write("0\n1\n");  // no scenario line
  EXPECT_FALSE(load_trace(path(), &error).has_value());
  EXPECT_NE(error.find("scenario"), std::string::npos);

  write("scenario x\noption bogus_flag 1\n");
  EXPECT_FALSE(load_trace(path(), &error).has_value());
  EXPECT_NE(error.find("unknown option"), std::string::npos);

  EXPECT_FALSE(load_trace("/nonexistent/dir/x.trace", &error).has_value());
}

TEST_F(TraceFile, EmbeddedSpecBlockRoundTrips) {
  Trace t;
  t.scenario = "soak:embedded";
  t.spec_text =
      "name embedded\n"
      "network ring 6\n"
      "# a comment the block must preserve\n"
      "churn flashcrowd mc=1 start=0s members=3 alpha=1.5 scale=1ms\n";
  t.spec_injections = 4;
  t.choices = {0, 0, 1};
  ASSERT_TRUE(save_trace(t, path(), {"watchdog: stuck mc 1"}));

  std::string error;
  const auto loaded = load_trace(path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->scenario, t.scenario);
  EXPECT_EQ(loaded->spec_text, t.spec_text);  // '#' line survived
  EXPECT_EQ(loaded->spec_injections, 4u);
  EXPECT_EQ(loaded->choices, t.choices);
}

TEST_F(TraceFile, RejectsUnterminatedSpecBlock) {
  write(
      "scenario soak:x\n"
      "spec-begin\n"
      "| name x\n"
      "| network ring 4\n");
  std::string error;
  EXPECT_FALSE(load_trace(path(), &error).has_value());
  EXPECT_NE(error.find("unterminated spec block"), std::string::npos);

  write(
      "scenario soak:x\n"
      "spec-begin\n"
      "name x\n"  // missing the '|' guard
      "spec-end\n");
  EXPECT_FALSE(load_trace(path(), &error).has_value());
  EXPECT_NE(error.find("must start with '|'"), std::string::npos);
}

TEST(TraceResolve, ResolvesEmbeddedSpecWithoutCatalog) {
  Trace t;
  t.scenario = "soak:self-contained";  // deliberately not in the catalog
  t.spec_text =
      "name self-contained\n"
      "network ring 6\n"
      "churn flashcrowd mc=1 start=0s members=3 alpha=1.5 scale=1ms\n";
  t.spec_injections = 2;
  std::string error;
  const auto spec = resolve_spec(t, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->injections.size(), 2u);  // truncated to spec_injections

  t.spec_text = "network banana\n";
  EXPECT_FALSE(resolve_spec(t, &error).has_value());
  EXPECT_NE(error.find("embedded spec"), std::string::npos);
}

TEST(TraceResolve, AppliesOptionsAndDrops) {
  Trace t;
  t.scenario = "triangle-join-leave";
  t.accept_stale_proposals = true;
  t.dropped_injections = {0, 2};
  std::string error;
  const auto spec = resolve_spec(t, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_TRUE(spec->params.dgmc.accept_stale_proposals);
  EXPECT_EQ(spec->injections.size(),
            find_scenario(t.scenario)->injections.size() - 2);

  t.scenario = "no-such-scenario";
  EXPECT_FALSE(resolve_spec(t, &error).has_value());
  EXPECT_NE(error.find("unknown scenario"), std::string::npos);

  t.scenario = "triangle-join-leave";
  t.dropped_injections = {99};
  EXPECT_FALSE(resolve_spec(t, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace dgmc::check
