#include "sim/experiment.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

namespace dgmc::sim {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.name = "test";
  cfg.network_sizes = {15};
  cfg.graphs_per_size = 3;
  cfg.events = 6;
  cfg.initial_members = 4;
  cfg.seed = 7;
  return cfg;
}

TEST(RunSingle, BurstyRunConvergesWithSaneMetrics) {
  const RunResult r = run_single(small_config(), 15, 0);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.computations_per_event, 0.5);
  EXPECT_LT(r.computations_per_event, 15.0);  // far below brute force (n)
  EXPECT_GE(r.floodings_per_event, 1.0);
  EXPECT_GT(r.convergence_rounds, 0.0);
}

TEST(RunSingle, NormalWorkloadCostsAboutOneComputationPerEvent) {
  ExperimentConfig cfg = small_config();
  cfg.workload = WorkloadKind::kNormal;
  cfg.normal_gap_rounds = 20.0;
  const RunResult r = run_single(cfg, 15, 0);
  EXPECT_TRUE(r.converged);
  // Paper Experiment 3: both ratios very close to one.
  EXPECT_NEAR(r.computations_per_event, 1.0, 0.35);
  EXPECT_NEAR(r.floodings_per_event, 1.0, 0.35);
}

TEST(RunSingle, DeterministicForSameSeed) {
  const ExperimentConfig cfg = small_config();
  const RunResult a = run_single(cfg, 15, 1);
  const RunResult b = run_single(cfg, 15, 1);
  EXPECT_DOUBLE_EQ(a.computations_per_event, b.computations_per_event);
  EXPECT_DOUBLE_EQ(a.floodings_per_event, b.floodings_per_event);
  EXPECT_DOUBLE_EQ(a.convergence_rounds, b.convergence_rounds);
}

TEST(RunSingle, DifferentGraphIndexDiffers) {
  const ExperimentConfig cfg = small_config();
  const RunResult a = run_single(cfg, 15, 0);
  const RunResult b = run_single(cfg, 15, 2);
  // Different random graph and workload: metrics almost surely differ.
  EXPECT_TRUE(a.computations_per_event != b.computations_per_event ||
              a.floodings_per_event != b.floodings_per_event ||
              a.convergence_rounds != b.convergence_rounds);
}

TEST(RunExperiment, ProducesOnePointPerSizeAllConverged) {
  ExperimentConfig cfg = small_config();
  cfg.network_sizes = {12, 18};
  cfg.graphs_per_size = 3;
  const auto points = run_experiment(cfg);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_DOUBLE_EQ(p.converged_fraction, 1.0);
    EXPECT_EQ(p.computations_per_event.n, 3u);
    EXPECT_GT(p.computations_per_event.mean, 0.0);
    EXPECT_GT(p.floodings_per_event.mean, 0.0);
  }
  EXPECT_EQ(points[0].network_size, 12);
  EXPECT_EQ(points[1].network_size, 18);
}

TEST(RunExperiment, ReceiverOnlyAndAsymmetricTypesWork) {
  for (mc::McType type :
       {mc::McType::kReceiverOnly, mc::McType::kAsymmetric}) {
    ExperimentConfig cfg = small_config();
    cfg.mc_type = type;
    cfg.graphs_per_size = 2;
    const auto points = run_experiment(cfg);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_DOUBLE_EQ(points[0].converged_fraction, 1.0)
        << mc::to_string(type);
  }
}

TEST(QuickMode, ShrinksConfigWhenEnvSet) {
  ExperimentConfig cfg;
  cfg.graphs_per_size = 20;
  setenv("DGMC_QUICK", "1", 1);
  const ExperimentConfig quick = apply_quick_mode(cfg);
  EXPECT_LE(quick.graphs_per_size, 5);
  EXPECT_LE(quick.network_sizes.back(), 100);
  unsetenv("DGMC_QUICK");
  const ExperimentConfig full = apply_quick_mode(cfg);
  EXPECT_EQ(full.graphs_per_size, 20);
}

TEST(PrintPoints, WritesTableWithHeader) {
  ExperimentConfig cfg = small_config();
  cfg.network_sizes = {12};
  cfg.graphs_per_size = 2;
  const auto points = run_experiment(cfg);
  char buf[4096] = {};
  std::FILE* mem = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(mem, nullptr);
  print_points(cfg, points, mem);
  std::fclose(mem);
  const std::string out(buf);
  EXPECT_NE(out.find("computations/event"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("±"), std::string::npos);
}

}  // namespace
}  // namespace dgmc::sim
