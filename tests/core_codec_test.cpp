#include "core/codec.hpp"

#include <random>

#include <gtest/gtest.h>

namespace dgmc::core {
namespace {

using trees::Topology;

McLsa sample_lsa() {
  McLsa lsa;
  lsa.source = 3;
  lsa.event = McEventType::kJoin;
  lsa.mc = 7;
  lsa.mc_type = mc::McType::kReceiverOnly;
  lsa.join_role = mc::MemberRole::kReceiver;
  lsa.link = graph::kInvalidLink;
  VectorTimestamp t(6);
  t.increment(3);
  t.increment(3);
  t.increment(0);
  lsa.stamp = t;
  lsa.proposal = Topology({graph::Edge(0, 3), graph::Edge(3, 5)});
  return lsa;
}

bool lsa_equal(const McLsa& a, const McLsa& b) {
  return a.source == b.source && a.event == b.event && a.mc == b.mc &&
         a.mc_type == b.mc_type && a.join_role == b.join_role &&
         a.link == b.link && a.stamp == b.stamp &&
         a.proposal.has_value() == b.proposal.has_value() &&
         (!a.proposal.has_value() || *a.proposal == *b.proposal);
}

TEST(Codec, McLsaRoundTrip) {
  const McLsa original = sample_lsa();
  const auto bytes = encode(original);
  EXPECT_EQ(bytes.size(), encoded_size(original));
  EXPECT_EQ(peek_type(bytes), WireType::kMcLsa);
  const auto decoded = decode_mc_lsa(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(lsa_equal(original, *decoded));
}

TEST(Codec, McLsaWithoutProposalRoundTrip) {
  McLsa lsa = sample_lsa();
  lsa.proposal.reset();
  lsa.event = McEventType::kLeave;
  const auto bytes = encode(lsa);
  const auto decoded = decode_mc_lsa(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(lsa_equal(lsa, *decoded));
}

TEST(Codec, LinkEventRoundTrip) {
  for (bool up : {true, false}) {
    const lsr::LinkEventAd ad{42, up};
    const auto bytes = encode(ad);
    EXPECT_EQ(peek_type(bytes), WireType::kLinkEvent);
    const auto decoded = decode_link_event(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, ad);
  }
}

TEST(Codec, EmptyProposalIsDistinctFromAbsent) {
  McLsa with_empty = sample_lsa();
  with_empty.proposal = Topology{};
  McLsa absent = sample_lsa();
  absent.proposal.reset();
  const auto a = decode_mc_lsa(encode(with_empty));
  const auto b = decode_mc_lsa(encode(absent));
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_TRUE(a->proposal.has_value());
  EXPECT_TRUE(a->proposal->empty());
  EXPECT_FALSE(b->proposal.has_value());
}

TEST(Codec, RejectsWrongTypeByte) {
  const auto mc_bytes = encode(sample_lsa());
  EXPECT_FALSE(decode_link_event(mc_bytes).has_value());
  const auto link_bytes = encode(lsr::LinkEventAd{1, true});
  EXPECT_FALSE(decode_mc_lsa(link_bytes).has_value());
  EXPECT_FALSE(decode_mc_lsa({}).has_value());
  EXPECT_FALSE(peek_type({0x00}).has_value());
}

TEST(Codec, RejectsTruncation) {
  const auto bytes = encode(sample_lsa());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_FALSE(decode_mc_lsa(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Codec, RejectsTrailingJunk) {
  auto bytes = encode(sample_lsa());
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_mc_lsa(bytes).has_value());
}

TEST(Codec, RejectsBadEnumValues) {
  auto bytes = encode(sample_lsa());
  // Byte layout: [0]=type, [1..4]=source, [5]=event.
  bytes[5] = 9;
  EXPECT_FALSE(decode_mc_lsa(bytes).has_value());
  bytes = encode(sample_lsa());
  // [6..9]=mc, [10]=mc_type.
  bytes[10] = 7;
  EXPECT_FALSE(decode_mc_lsa(bytes).has_value());
  bytes = encode(sample_lsa());
  // [11]=join_role: zero is invalid.
  bytes[11] = 0;
  EXPECT_FALSE(decode_mc_lsa(bytes).has_value());
}

TEST(Codec, RejectsSelfLoopProposalEdge) {
  McLsa lsa = sample_lsa();
  auto bytes = encode(lsa);
  // Overwrite the first proposal edge (last 16 bytes are two edges of
  // 8 bytes each) to make it a self-loop 2-2.
  const std::size_t first_edge = bytes.size() - 16;
  for (int i = 0; i < 8; ++i) bytes[first_edge + i] = 0;
  bytes[first_edge] = 2;
  bytes[first_edge + 4] = 2;
  EXPECT_FALSE(decode_mc_lsa(bytes).has_value());
}

TEST(Codec, RejectsSourceOutsideStamp) {
  McLsa lsa = sample_lsa();
  lsa.source = 6;  // stamp has 6 components: valid ids are 0..5
  EXPECT_FALSE(decode_mc_lsa(encode(lsa)).has_value());
}

TEST(Codec, RandomBytesNeverCrash) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    if (!bytes.empty() && trial % 2 == 0) {
      bytes[0] = static_cast<std::uint8_t>(WireType::kMcLsa);
    }
    (void)decode_mc_lsa(bytes);
    (void)decode_link_event(bytes);
  }
  SUCCEED();
}

TEST(Codec, EncodedSizeScalesWithStampDimension) {
  // The timestamp is the generality's wire cost: 4 bytes per switch.
  McLsa a = sample_lsa();
  a.stamp = VectorTimestamp(10);
  McLsa b = sample_lsa();
  b.stamp = VectorTimestamp(110);
  EXPECT_EQ(encode(a).size() + 4 * 100, encode(b).size());
  EXPECT_EQ(encode(a).size(), encoded_size(a));
}


TEST(Codec, McSyncRoundTrip) {
  McSync sync;
  sync.source = 2;
  sync.mc = 5;
  sync.mc_type = mc::McType::kAsymmetric;
  sync.entries.push_back(McSyncEntry{0, 3, 3, true, mc::MemberRole::kSender});
  sync.entries.push_back(
      McSyncEntry{4, 1, 1, false, mc::MemberRole::kNone});
  VectorTimestamp c(6);
  c.increment(0);
  c.increment(4);
  c.increment(4);
  sync.c = c;
  sync.c_origin = 4;
  sync.installed = Topology({graph::Edge(0, 2), graph::Edge(2, 4)});
  const auto bytes = encode(sync);
  EXPECT_EQ(peek_type(bytes), WireType::kMcSync);
  const auto decoded = decode_mc_sync(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source, sync.source);
  EXPECT_EQ(decoded->mc, sync.mc);
  EXPECT_EQ(decoded->mc_type, sync.mc_type);
  EXPECT_EQ(decoded->entries, sync.entries);
  EXPECT_EQ(decoded->c, sync.c);
  EXPECT_EQ(decoded->c_origin, sync.c_origin);
  EXPECT_EQ(decoded->installed, sync.installed);
}

TEST(Codec, McSyncWithoutInstallRoundTrips) {
  McSync sync;  // a sender that never accepted a proposal
  sync.source = 0;
  sync.mc = 1;
  const auto bytes = encode(sync);
  const auto decoded = decode_mc_sync(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->c_origin, graph::kInvalidNode);
  EXPECT_TRUE(decoded->installed.empty());
}

TEST(Codec, McSyncRejectsMalformedInput) {
  McSync sync;
  sync.source = 1;
  sync.mc = 0;
  sync.entries.push_back(McSyncEntry{0, 1, 1, true, mc::MemberRole::kBoth});
  auto bytes = encode(sync);
  // Truncations.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> t(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(decode_mc_sync(t).has_value()) << cut;
  }
  // Member entry with role kNone. The entry's role byte sits just
  // before the 12-byte trailer (empty C stamp + c_origin + edge count).
  bytes = encode(sync);
  bytes[bytes.size() - 13] = 0;
  EXPECT_FALSE(decode_mc_sync(bytes).has_value());
  // Wrong type byte.
  EXPECT_FALSE(decode_mc_sync(encode(sample_lsa())).has_value());
}

}  // namespace
}  // namespace dgmc::core
