#include "fault/fault.hpp"

#include <gtest/gtest.h>

namespace dgmc::fault {
namespace {

TEST(FaultInjector, NoFaultsMeansNoDrops) {
  FaultPlan plan;  // all defaults: lossless
  FaultInjector inj(plan, 4, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.drop(i % 4));
    EXPECT_EQ(inj.extra_delay(i % 4), 0.0);
  }
  EXPECT_EQ(inj.drops(), 0u);
  EXPECT_EQ(inj.decisions(), 1000u);
}

TEST(FaultInjector, IidLossMatchesProbability) {
  FaultPlan plan;
  plan.iid_loss = 0.2;
  FaultInjector inj(plan, 1, 7);
  const int trials = 20000;
  int lost = 0;
  for (int i = 0; i < trials; ++i) {
    if (inj.drop(0)) ++lost;
  }
  const double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.2, 0.02);
  EXPECT_EQ(inj.drops(), static_cast<std::uint64_t>(lost));
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.iid_loss = 0.3;
  plan.max_extra_delay = 1e-3;
  FaultInjector a(plan, 3, 42);
  FaultInjector b(plan, 3, 42);
  for (int i = 0; i < 500; ++i) {
    const graph::LinkId link = i % 3;
    EXPECT_EQ(a.drop(link), b.drop(link));
    EXPECT_EQ(a.extra_delay(link), b.extra_delay(link));
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.iid_loss = 0.5;
  FaultInjector a(plan, 1, 1);
  FaultInjector b(plan, 1, 2);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.drop(0) != b.drop(0)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjector, GilbertElliottLossesComeInBursts) {
  FaultPlan plan;
  plan.use_burst = true;
  plan.burst.p_good_to_bad = 0.01;
  plan.burst.p_bad_to_good = 0.25;  // mean burst length 4
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  FaultInjector inj(plan, 1, 11);
  const int trials = 50000;
  int losses = 0, bursts = 0;
  bool in_burst = false;
  for (int i = 0; i < trials; ++i) {
    const bool lost = inj.drop(0);
    if (lost) {
      ++losses;
      if (!in_burst) ++bursts;
    }
    in_burst = lost;
  }
  ASSERT_GT(bursts, 0);
  // Steady state: bad fraction = p_gb / (p_gb + p_bg) ~ 3.8% loss.
  EXPECT_NEAR(static_cast<double>(losses) / trials, 0.0385, 0.01);
  // Mean burst length ~ 1/p_bad_to_good = 4 — far above the ~1.04 an
  // i.i.d. model of equal loss rate would produce.
  const double mean_burst = static_cast<double>(losses) / bursts;
  EXPECT_GT(mean_burst, 2.5);
}

TEST(FaultInjector, BurstStateIsPerLink) {
  FaultPlan plan;
  plan.use_burst = true;
  plan.burst.p_good_to_bad = 1.0;  // link enters bad on first decision
  plan.burst.p_bad_to_good = 0.0;  // and never leaves
  plan.burst.loss_bad = 1.0;
  FaultInjector inj(plan, 2, 3);
  EXPECT_TRUE(inj.drop(0));
  // Link 1 starts in its own good state regardless of link 0's history
  // (its first decision still transitions it to bad, so it also drops —
  // but only after its own transition draw).
  EXPECT_TRUE(inj.drop(1));
  EXPECT_EQ(inj.drops(), 2u);
}

TEST(FaultInjector, FaultKindsDrawFromIndependentStreams) {
  // Each fault kind draws from its own forked child of the injector's
  // base stream, so enabling one kind never perturbs another's decision
  // sequence. Pinned here because the soak specs rely on it: adding
  // burst loss to a scenario must not reshuffle its jitter.
  FaultPlan iid_only;
  iid_only.iid_loss = 0.3;
  FaultPlan iid_plus_jitter = iid_only;
  iid_plus_jitter.max_extra_delay = 1e-3;
  FaultPlan everything = iid_plus_jitter;
  everything.use_burst = true;
  everything.burst.p_good_to_bad = 0.05;
  everything.burst.p_bad_to_good = 0.3;
  everything.burst.loss_bad = 0.9;

  constexpr std::uint64_t kSeed = 77;
  FaultInjector a(iid_only, 2, kSeed);
  FaultInjector b(iid_plus_jitter, 2, kSeed);
  FaultInjector c(everything, 2, kSeed);

  for (int i = 0; i < 400; ++i) {
    const graph::LinkId link = i % 2;
    // All three consume one loss decision and one jitter draw per
    // iteration, staying in lockstep on their shared streams.
    const bool iid_a = a.drop(link);
    const bool iid_b = b.drop(link);
    const bool combined = c.drop(link);
    // Jitter on/off leaves the i.i.d. loss sequence bit-identical.
    EXPECT_EQ(iid_a, iid_b);
    // Burst is an *additional* loss cause drawn from its own stream on
    // top of the same i.i.d. draws: an i.i.d. loss stays a loss.
    if (iid_b) EXPECT_TRUE(combined);
    // And the jitter sequence is untouched by the burst model.
    EXPECT_EQ(b.extra_delay(link), c.extra_delay(link));
  }
}

TEST(FaultInjector, JitterSequenceUnchangedByLossRate) {
  // The jitter stream is forked independently of the loss stream:
  // cranking loss from 0 to 50% must not move a single jitter draw.
  FaultPlan quiet;
  quiet.max_extra_delay = 2e-3;
  FaultPlan noisy = quiet;
  noisy.iid_loss = 0.5;
  FaultInjector a(quiet, 1, 123);
  FaultInjector b(noisy, 1, 123);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.extra_delay(0), b.extra_delay(0));
    a.drop(0);
    b.drop(0);
  }
}

TEST(FaultInjector, JitterIsBounded) {
  FaultPlan plan;
  plan.max_extra_delay = 5e-4;
  FaultInjector inj(plan, 1, 9);
  double max_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double d = inj.extra_delay(0);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 5e-4);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_GT(max_seen, 2.5e-4);  // actually exercises the range
}

}  // namespace
}  // namespace dgmc::fault
