#include "fault/fault.hpp"

#include <gtest/gtest.h>

namespace dgmc::fault {
namespace {

TEST(FaultInjector, NoFaultsMeansNoDrops) {
  FaultPlan plan;  // all defaults: lossless
  FaultInjector inj(plan, 4, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.drop(i % 4));
    EXPECT_EQ(inj.extra_delay(i % 4), 0.0);
  }
  EXPECT_EQ(inj.drops(), 0u);
  EXPECT_EQ(inj.decisions(), 1000u);
}

TEST(FaultInjector, IidLossMatchesProbability) {
  FaultPlan plan;
  plan.iid_loss = 0.2;
  FaultInjector inj(plan, 1, 7);
  const int trials = 20000;
  int lost = 0;
  for (int i = 0; i < trials; ++i) {
    if (inj.drop(0)) ++lost;
  }
  const double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.2, 0.02);
  EXPECT_EQ(inj.drops(), static_cast<std::uint64_t>(lost));
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.iid_loss = 0.3;
  plan.max_extra_delay = 1e-3;
  FaultInjector a(plan, 3, 42);
  FaultInjector b(plan, 3, 42);
  for (int i = 0; i < 500; ++i) {
    const graph::LinkId link = i % 3;
    EXPECT_EQ(a.drop(link), b.drop(link));
    EXPECT_EQ(a.extra_delay(link), b.extra_delay(link));
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan plan;
  plan.iid_loss = 0.5;
  FaultInjector a(plan, 1, 1);
  FaultInjector b(plan, 1, 2);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.drop(0) != b.drop(0)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjector, GilbertElliottLossesComeInBursts) {
  FaultPlan plan;
  plan.use_burst = true;
  plan.burst.p_good_to_bad = 0.01;
  plan.burst.p_bad_to_good = 0.25;  // mean burst length 4
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  FaultInjector inj(plan, 1, 11);
  const int trials = 50000;
  int losses = 0, bursts = 0;
  bool in_burst = false;
  for (int i = 0; i < trials; ++i) {
    const bool lost = inj.drop(0);
    if (lost) {
      ++losses;
      if (!in_burst) ++bursts;
    }
    in_burst = lost;
  }
  ASSERT_GT(bursts, 0);
  // Steady state: bad fraction = p_gb / (p_gb + p_bg) ~ 3.8% loss.
  EXPECT_NEAR(static_cast<double>(losses) / trials, 0.0385, 0.01);
  // Mean burst length ~ 1/p_bad_to_good = 4 — far above the ~1.04 an
  // i.i.d. model of equal loss rate would produce.
  const double mean_burst = static_cast<double>(losses) / bursts;
  EXPECT_GT(mean_burst, 2.5);
}

TEST(FaultInjector, BurstStateIsPerLink) {
  FaultPlan plan;
  plan.use_burst = true;
  plan.burst.p_good_to_bad = 1.0;  // link enters bad on first decision
  plan.burst.p_bad_to_good = 0.0;  // and never leaves
  plan.burst.loss_bad = 1.0;
  FaultInjector inj(plan, 2, 3);
  EXPECT_TRUE(inj.drop(0));
  // Link 1 starts in its own good state regardless of link 0's history
  // (its first decision still transitions it to bad, so it also drops —
  // but only after its own transition draw).
  EXPECT_TRUE(inj.drop(1));
  EXPECT_EQ(inj.drops(), 2u);
}

TEST(FaultInjector, JitterIsBounded) {
  FaultPlan plan;
  plan.max_extra_delay = 5e-4;
  FaultInjector inj(plan, 1, 9);
  double max_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double d = inj.extra_delay(0);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 5e-4);
    max_seen = std::max(max_seen, d);
  }
  EXPECT_GT(max_seen, 2.5e-4);  // actually exercises the range
}

}  // namespace
}  // namespace dgmc::fault
