#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace dgmc::sim {
namespace {

Scenario parse_ok(std::string_view text) {
  auto result = Scenario::parse(text);
  const auto* err = std::get_if<ScenarioError>(&result);
  EXPECT_EQ(err, nullptr)
      << "line " << (err ? err->line : 0) << ": "
      << (err ? err->message : "");
  return std::get<Scenario>(std::move(result));
}

ScenarioError parse_err(std::string_view text) {
  auto result = Scenario::parse(text);
  if (auto* err = std::get_if<ScenarioError>(&result)) return *err;
  ADD_FAILURE() << "expected a parse error";
  return {};
}

std::string run_to_string(const Scenario& sc, bool* ok = nullptr) {
  char buf[8192] = {};
  std::FILE* mem = fmemopen(buf, sizeof buf, "w");
  const bool converged = sc.execute(mem);
  std::fclose(mem);
  if (ok != nullptr) *ok = converged;
  return buf;
}

TEST(ParseTime, SuffixesAndBareSeconds) {
  EXPECT_DOUBLE_EQ(parse_time("25ms").value(), 0.025);
  EXPECT_DOUBLE_EQ(parse_time("4us").value(), 4e-6);
  EXPECT_DOUBLE_EQ(parse_time("1.5s").value(), 1.5);
  EXPECT_DOUBLE_EQ(parse_time("2").value(), 2.0);
  EXPECT_DOUBLE_EQ(parse_time("0").value(), 0.0);
  EXPECT_FALSE(parse_time("").has_value());
  EXPECT_FALSE(parse_time("ms").has_value());
  EXPECT_FALSE(parse_time("abc").has_value());
  EXPECT_FALSE(parse_time("-5ms").has_value());
}

TEST(ScenarioParse, MinimalScript) {
  const Scenario sc = parse_ok(R"(
network ring 6
at 0ms join 2 mc=0
run
)");
  EXPECT_EQ(sc.network_size(), 6);
  EXPECT_EQ(sc.event_count(), 1u);
  EXPECT_EQ(sc.checkpoint_count(), 1u);
}

TEST(ScenarioParse, CommentsAndCaseInsensitivity) {
  parse_ok(R"(
# a comment
NETWORK Ring 6   # trailing comment
AT 1ms JOIN 0 MC=0
)");
}

TEST(ScenarioParse, GridAndOptions) {
  const Scenario sc = parse_ok(R"(
network grid 3 4 seed=9
timing tc=5ms perhop=10us
option algorithm=fromscratch resync=on dualdetect=on
delay uniform 2us
at 0 join 5 mc=1 type=receiver
)");
  EXPECT_EQ(sc.network_size(), 12);
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  EXPECT_EQ(parse_err("bogus statement").line, 1);
  EXPECT_EQ(parse_err("network ring 6\nat xx join 1 mc=0").line, 2);
  EXPECT_EQ(parse_err("network waxman 1").line, 1);   // size too small
  EXPECT_EQ(parse_err("network ring 6\nat 0 fail 1 1").line, 2);
  EXPECT_EQ(parse_err("network ring 6\nat 0 join 1 mc=0 role=boss").line,
            2);
  EXPECT_EQ(parse_err("network ring 6\noption resync=maybe").line, 2);
  EXPECT_EQ(parse_err("delay uniform fast").line, 1);
}

TEST(ScenarioParse, RejectsOutOfRangeSwitchIds) {
  const ScenarioError err = parse_err(R"(
network ring 4
at 0 join 9 mc=0
)");
  EXPECT_NE(err.message.find("beyond"), std::string::npos);
}

TEST(ScenarioExecute, JoinsConvergeAndReport) {
  const Scenario sc = parse_ok(R"(
network ring 8
timing tc=1ms perhop=4us
at 0ms join 1 mc=0
at 50ms join 5 mc=0
run
)");
  bool ok = false;
  const std::string out = run_to_string(sc, &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(out.find("members 1 5"), std::string::npos);
  EXPECT_NE(out.find("converged yes"), std::string::npos);
  EXPECT_NE(out.find("== totals =="), std::string::npos);
}

TEST(ScenarioExecute, MultipleCheckpointsAndLeaveToDestruction) {
  const Scenario sc = parse_ok(R"(
network line 5
timing tc=1ms perhop=4us
at 0 join 0 mc=0
run
at 0 join 4 mc=0
run
at 0 leave 0 mc=0
at 20ms leave 4 mc=0
run
)");
  bool ok = false;
  const std::string out = run_to_string(sc, &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(out.find("checkpoint 3"), std::string::npos);
  EXPECT_NE(out.find("mc 0: destroyed"), std::string::npos);
}

TEST(ScenarioExecute, FailRestoreAndDataPackets) {
  const Scenario sc = parse_ok(R"(
network ring 6
timing tc=1ms perhop=4us
at 0 join 0 mc=0
at 20ms join 1 mc=0
run
at 0 fail 0 1
at 30ms send 0 mc=0
run
at 0 restore 0 1
run
)");
  bool ok = false;
  const std::string out = run_to_string(sc, &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(out.find("packets: 1 sent, 1 fully delivered"),
            std::string::npos);
}

TEST(ScenarioExecute, UnknownLinkFailIsIgnored) {
  const Scenario sc = parse_ok(R"(
network line 4
at 0 join 1 mc=0
at 0 fail 0 3
run
)");
  bool ok = false;
  run_to_string(sc, &ok);
  EXPECT_TRUE(ok);
}

TEST(ScenarioExecute, ImplicitFinalRun) {
  const Scenario sc = parse_ok(R"(
network ring 5
at 0 join 2 mc=0
)");
  bool ok = false;
  const std::string out = run_to_string(sc, &ok);
  EXPECT_TRUE(ok);
  EXPECT_NE(out.find("checkpoint 1"), std::string::npos);
}

}  // namespace
}  // namespace dgmc::sim
