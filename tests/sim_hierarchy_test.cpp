#include "sim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace dgmc::sim {
namespace {

constexpr mc::McId kMc = 0;

// Three 4-node ring areas in a chain, bridged 3-4 and 7-8.
//   area 0: 0..3   area 1: 4..7   area 2: 8..11
graph::Graph three_areas(std::vector<int>* areas) {
  graph::Graph g(12);
  for (int base : {0, 4, 8}) {
    for (int i = 0; i < 4; ++i) {
      g.add_link(base + i, base + ((i + 1) % 4));
    }
  }
  g.add_link(3, 4);
  g.add_link(7, 8);
  g.set_uniform_delay(1e-6);
  areas->assign({0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2});
  return g;
}

HierarchicalNetwork::Params fast_params() {
  HierarchicalNetwork::Params p;
  p.per_hop_overhead = 4e-6;
  p.dgmc.computation_time = 1e-3;
  return p;
}

TEST(Hierarchy, BordersAndBackboneConstruction) {
  std::vector<int> areas;
  graph::Graph g = three_areas(&areas);
  HierarchicalNetwork net(std::move(g), areas, fast_params(),
                          mc::make_incremental_algorithm());
  EXPECT_EQ(net.area_count(), 3);
  EXPECT_EQ(net.border_of(0), 3);  // endpoint of 3-4
  EXPECT_EQ(net.border_of(1), 4);  // lowest inter-area endpoint in area 1
  EXPECT_EQ(net.border_of(2), 8);
  EXPECT_EQ(net.area_of(5), 1);
}

TEST(Hierarchy, SingleAreaMcStaysLocal) {
  std::vector<int> areas;
  graph::Graph g = three_areas(&areas);
  HierarchicalNetwork net(std::move(g), areas, fast_params(),
                          mc::make_incremental_algorithm());
  net.join(0, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  net.join(2, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_TRUE(net.serves_members(kMc));
  // Interior switches of the other areas never heard of the MC.
  for (graph::NodeId n : {5, 6, 9, 10}) {
    // n is not a border; its area switch must hold no state.
    SCOPED_TRACE(n);
    EXPECT_EQ(net.members(kMc), (std::vector<graph::NodeId>{0, 2}));
  }
}

TEST(Hierarchy, CrossAreaMcGluesThroughBackbone) {
  std::vector<int> areas;
  graph::Graph g = three_areas(&areas);
  HierarchicalNetwork net(std::move(g), areas, fast_params(),
                          mc::make_incremental_algorithm());
  for (graph::NodeId m : {1, 6, 10}) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  ASSERT_TRUE(net.converged(kMc));
  EXPECT_TRUE(net.serves_members(kMc));
  const trees::Topology glued = net.global_topology(kMc);
  // Members of all three areas are mutually connected.
  EXPECT_TRUE(trees::connects(glued, {1, 6, 10}));
  // The glue crosses both bridges.
  EXPECT_TRUE(glued.contains(graph::Edge(3, 4)));
  EXPECT_TRUE(glued.contains(graph::Edge(7, 8)));
}

TEST(Hierarchy, LeavesDisengageAreasAndBackbone) {
  std::vector<int> areas;
  graph::Graph g = three_areas(&areas);
  HierarchicalNetwork net(std::move(g), areas, fast_params(),
                          mc::make_incremental_algorithm());
  for (graph::NodeId m : {1, 6}) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  net.leave(6, kMc);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_EQ(net.members(kMc), (std::vector<graph::NodeId>{1}));
  EXPECT_TRUE(net.serves_members(kMc));
  net.leave(1, kMc);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_TRUE(net.members(kMc).empty());
}

TEST(Hierarchy, BorderSwitchAsRealMember) {
  std::vector<int> areas;
  graph::Graph g = three_areas(&areas);
  HierarchicalNetwork net(std::move(g), areas, fast_params(),
                          mc::make_incremental_algorithm());
  net.join(3, kMc, mc::McType::kSymmetric);  // the area-0 border itself
  net.run_to_quiescence();
  net.join(6, kMc, mc::McType::kSymmetric);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_TRUE(net.serves_members(kMc));
  // The border leaving as a member keeps it engaged only if other
  // area-0 members remain; here none do.
  net.leave(3, kMc);
  net.run_to_quiescence();
  EXPECT_TRUE(net.converged(kMc));
  EXPECT_EQ(net.members(kMc), (std::vector<graph::NodeId>{6}));
}

TEST(Hierarchy, ReceiverOnlyAndAsymmetricTypes) {
  for (mc::McType type :
       {mc::McType::kReceiverOnly, mc::McType::kAsymmetric}) {
    std::vector<int> areas;
    graph::Graph g = three_areas(&areas);
    HierarchicalNetwork net(std::move(g), areas, fast_params(),
                            mc::make_incremental_algorithm());
    const mc::MemberRole first = type == mc::McType::kAsymmetric
                                     ? mc::MemberRole::kBoth
                                     : mc::MemberRole::kReceiver;
    net.join(1, kMc, type, first);
    net.run_to_quiescence();
    net.join(9, kMc, type, mc::MemberRole::kReceiver);
    net.run_to_quiescence();
    EXPECT_TRUE(net.converged(kMc)) << mc::to_string(type);
    EXPECT_TRUE(net.serves_members(kMc)) << mc::to_string(type);
  }
}

TEST(Hierarchy, LsaScopeIsSmallerThanFlatFlooding) {
  // Identical 3-area topology and event stream, flat vs hierarchical:
  // the hierarchy must deliver far fewer LSA copies.
  std::vector<int> areas;
  graph::Graph g = three_areas(&areas);

  HierarchicalNetwork hier(g, areas, fast_params(),
                           mc::make_incremental_algorithm());
  DgmcNetwork::Params flat_params;
  flat_params.per_hop_overhead = 4e-6;
  flat_params.dgmc.computation_time = 1e-3;
  DgmcNetwork flat(g, flat_params, mc::make_incremental_algorithm());

  // Churn entirely inside area 0.
  for (graph::NodeId m : {0, 1, 2}) {
    hier.join(m, kMc, mc::McType::kSymmetric);
    hier.run_to_quiescence();
    flat.join(m, kMc, mc::McType::kSymmetric);
    flat.run_to_quiescence();
  }
  hier.leave(1, kMc);
  hier.run_to_quiescence();
  flat.leave(1, kMc);
  flat.run_to_quiescence();

  // Flat: every LSA floods all 17 links; hierarchical: area 0's 4
  // links, plus a one-time border/backbone engagement on the first
  // join. On this toy network that one-time cost eats part of the
  // margin; the asymptotic Θ(n) -> Θ(area) gap is measured at scale by
  // bench/table_hierarchy.
  EXPECT_LT(hier.totals().link_transmissions,
            flat.lsa_link_transmissions());
  EXPECT_TRUE(hier.converged(kMc));
  EXPECT_TRUE(flat.converged(kMc));
}

TEST(Hierarchy, RandomCrossAreaChurnConverges) {
  for (int seed = 1; seed <= 5; ++seed) {
    util::RngStream rng(seed);
    std::vector<int> areas;
    graph::Graph g = three_areas(&areas);
    HierarchicalNetwork net(std::move(g), areas, fast_params(),
                            mc::make_incremental_algorithm());
    std::set<graph::NodeId> current;
    for (int step = 0; step < 12; ++step) {
      const graph::NodeId n = static_cast<graph::NodeId>(rng.index(12));
      if (current.count(n)) {
        net.leave(n, kMc);
        current.erase(n);
      } else {
        net.join(n, kMc, mc::McType::kSymmetric);
        current.insert(n);
      }
      net.run_to_quiescence();
      ASSERT_TRUE(net.converged(kMc)) << "seed=" << seed
                                      << " step=" << step;
      ASSERT_TRUE(net.serves_members(kMc)) << "seed=" << seed
                                           << " step=" << step;
      ASSERT_EQ(net.members(kMc),
                std::vector<graph::NodeId>(current.begin(), current.end()));
    }
  }
}

}  // namespace
}  // namespace dgmc::sim
