#include "trees/load.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trees/spt.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace dgmc::trees {
namespace {

TEST(Load, AddTopologyLoadCountsEveryEdge) {
  EdgeLoadMap loads;
  const Topology t({Edge(0, 1), Edge(1, 2)});
  add_topology_load(loads, t);
  add_topology_load(loads, t);
  EXPECT_EQ(loads[Edge(0, 1)], 2);
  EXPECT_EQ(loads[Edge(1, 2)], 2);
  EXPECT_EQ(max_load(loads), 2);
  EXPECT_EQ(total_load(loads), 4);
}

TEST(Load, AddPathLoadFollowsShortestPath) {
  const Graph g = graph::line(5);
  EdgeLoadMap loads;
  add_path_load(loads, g, 0, 3);
  EXPECT_EQ(loads[Edge(0, 1)], 1);
  EXPECT_EQ(loads[Edge(1, 2)], 1);
  EXPECT_EQ(loads[Edge(2, 3)], 1);
  EXPECT_EQ(loads.count(Edge(3, 4)), 0u);
  add_path_load(loads, g, 3, 3);  // self: no-op
  EXPECT_EQ(total_load(loads), 3);
}

TEST(Load, EmptyMapBasics) {
  EdgeLoadMap loads;
  EXPECT_EQ(max_load(loads), 0);
  EXPECT_EQ(total_load(loads), 0);
}

TEST(SharedTreeLoads, OnTreeSourcesLoadEveryTreeEdgeOnce) {
  const Graph g = graph::line(4);
  const Topology tree({Edge(0, 1), Edge(1, 2), Edge(2, 3)});
  const EdgeLoadMap loads = shared_tree_loads(g, tree, {0, 3});
  // Two on-tree sources, each covering all 3 edges.
  EXPECT_EQ(max_load(loads), 2);
  EXPECT_EQ(total_load(loads), 6);
}

TEST(SharedTreeLoads, OffTreeSourceAddsUnicastLeg) {
  // Tree on 0-1; source 3 is off-tree, two hops from node 1.
  const Graph g = graph::line(4);
  const Topology tree({Edge(0, 1)});
  const EdgeLoadMap loads = shared_tree_loads(g, tree, {3});
  EXPECT_EQ(loads.at(Edge(0, 1)), 1);  // tree coverage
  EXPECT_EQ(loads.at(Edge(2, 3)), 1);  // unicast leg
  EXPECT_EQ(loads.at(Edge(1, 2)), 1);
}

TEST(PerSourceTreeLoads, DistributesAcrossTrees) {
  const Graph g = graph::ring(6);
  // Sources 0 and 3 each reach receivers {1, 4} by their own trees.
  const std::vector<Topology> trees = {
      pruned_spt(g, 0, {1, 4}),
      pruned_spt(g, 3, {1, 4}),
  };
  const EdgeLoadMap loads = per_source_tree_loads(trees);
  EXPECT_GT(total_load(loads), 0);
  // No edge should carry more than both sources' traffic.
  EXPECT_LE(max_load(loads), 2);
}

TEST(TrafficConcentration, SharedTreeConcentratesMoreThanPerSource) {
  // The §5 comparison: with many senders, every shared-tree edge
  // carries every sender's traffic; per-source trees spread the load.
  util::RngStream rng(41);
  const Graph g = graph::random_connected(30, 3.0, rng);
  std::vector<NodeId> members;
  for (int i = 0; i < 8; ++i) {
    members.push_back(static_cast<NodeId>(rng.index(30)));
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  const Topology shared = kmb_steiner(g, members);
  const EdgeLoadMap shared_loads = shared_tree_loads(g, shared, members);

  std::vector<Topology> per_source;
  for (NodeId s : members) {
    per_source.push_back(pruned_spt(g, s, members));
  }
  const EdgeLoadMap spread_loads = per_source_tree_loads(per_source);

  EXPECT_EQ(max_load(shared_loads), static_cast<int>(members.size()));
  EXPECT_LE(max_load(spread_loads), max_load(shared_loads));
}

}  // namespace
}  // namespace dgmc::trees
