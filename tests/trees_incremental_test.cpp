#include "trees/incremental.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace dgmc::trees {
namespace {

TEST(GreedyAttach, AttachesViaNearestTreeNode) {
  // Line 0-1-2-3-4; tree {0-1}; member 4 attaches through 1-2-3-4.
  const Graph g = graph::line(5);
  const Topology t({Edge(0, 1)});
  const Topology out = greedy_attach(g, t, 4);
  EXPECT_EQ(out, Topology({Edge(0, 1), Edge(1, 2), Edge(2, 3), Edge(3, 4)}));
}

TEST(GreedyAttach, NoOpWhenAlreadyOnTree) {
  const Graph g = graph::line(4);
  const Topology t({Edge(0, 1), Edge(1, 2)});
  EXPECT_EQ(greedy_attach(g, t, 1), t);
  EXPECT_EQ(greedy_attach(g, t, 2), t);
}

TEST(GreedyAttach, EmptyTreeUsesFallbackAnchor) {
  const Graph g = graph::line(4);
  const Topology out = greedy_attach(g, Topology{}, 3, /*fallback=*/0);
  EXPECT_EQ(out, Topology({Edge(0, 1), Edge(1, 2), Edge(2, 3)}));
}

TEST(GreedyAttach, EmptyTreeNoAnchorStaysEmpty) {
  const Graph g = graph::line(4);
  EXPECT_TRUE(greedy_attach(g, Topology{}, 3).empty());
  // Anchor equal to the member is also degenerate.
  EXPECT_TRUE(greedy_attach(g, Topology{}, 3, 3).empty());
}

TEST(GreedyAttach, PicksCheapestAttachmentPoint) {
  // Member 5 is 1 hop from tree node 3 but 3 hops from tree node 0.
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 5);
  g.add_link(0, 4);
  g.add_link(4, 5);  // alternative 2-hop path to 0's side
  const Topology t({Edge(0, 1), Edge(1, 2), Edge(2, 3)});
  const Topology out = greedy_attach(g, t, 5);
  EXPECT_TRUE(out.contains(Edge(3, 5)));
  EXPECT_EQ(out.edge_count(), 4u);
}

TEST(GreedyAttach, ResultStaysForest) {
  util::RngStream rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::random_connected(30, 3.0, rng);
    Topology t = kmb_steiner(g, {0, 10, 20});
    for (NodeId m : {5, 15, 25, 29}) {
      t = greedy_attach(g, t, m);
      EXPECT_TRUE(is_forest(t)) << "trial=" << trial << " member=" << m;
    }
    EXPECT_TRUE(is_steiner_tree(t, {0, 10, 20, 5, 15, 25, 29}));
  }
}

TEST(PruneAfterLeave, RemovesServingBranch) {
  // Tree 0-1-2 with members {0, 2}; 2 leaves -> only 0 remains, tree
  // prunes to empty (single member).
  Topology t({Edge(0, 1), Edge(1, 2)});
  const Topology out = prune_after_leave(std::move(t), {0});
  EXPECT_TRUE(out.empty());
}

TEST(PruneAfterLeave, KeepsSteinerNodesOnTrunk) {
  // Y-shape: hub 1 joins terminals 0, 2, 3; if 3 leaves, hub stays.
  Topology t({Edge(0, 1), Edge(1, 2), Edge(1, 3)});
  const Topology out = prune_after_leave(std::move(t), {0, 2});
  EXPECT_EQ(out, Topology({Edge(0, 1), Edge(1, 2)}));
}

TEST(JoinLeaveRoundTrip, ReturnsToEquivalentTree) {
  const Graph g = graph::line(6);
  Topology t = kmb_steiner(g, {0, 2});
  const Topology before = t;
  t = greedy_attach(g, t, 5);
  EXPECT_TRUE(is_steiner_tree(t, {0, 2, 5}));
  t = prune_after_leave(std::move(t), {0, 2});
  EXPECT_EQ(t, before);
}

}  // namespace
}  // namespace dgmc::trees
