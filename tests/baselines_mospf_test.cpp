#include "baselines/mospf.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "trees/spt.hpp"
#include "util/rng.hpp"

namespace dgmc::baselines {
namespace {

MospfNetwork::Params test_params() {
  MospfNetwork::Params p;
  p.per_hop_overhead = 4e-6;
  p.computation_time = 10e-3;
  return p;
}

graph::Graph unit_delay(graph::Graph g) {
  g.set_uniform_delay(1e-6);
  return g;
}

TEST(Mospf, MembershipFloodsButComputesNothing) {
  MospfNetwork net(unit_delay(graph::ring(8)), test_params());
  net.join(2);
  net.join(6);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().membership_floodings, 2u);
  EXPECT_EQ(net.totals().computations, 0u);  // data-driven: no datagram yet
  EXPECT_TRUE(net.members_at(0).contains(2));
  EXPECT_TRUE(net.members_at(0).contains(6));
}

TEST(Mospf, FirstDatagramTriggersComputationsAlongTree) {
  MospfNetwork net(unit_delay(graph::line(6)), test_params());
  net.join(5);
  net.run_to_quiescence();
  net.send_datagram(0);
  net.run_to_quiescence();
  // Every switch on the 0..5 path computed once.
  EXPECT_EQ(net.totals().computations, 6u);
  EXPECT_EQ(net.totals().datagrams_delivered, 1u);
}

TEST(Mospf, CachedTreesSuppressRecomputation) {
  MospfNetwork net(unit_delay(graph::line(6)), test_params());
  net.join(5);
  net.run_to_quiescence();
  net.send_datagram(0);
  net.run_to_quiescence();
  const auto after_first = net.totals();
  net.send_datagram(0);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().computations, after_first.computations);
  EXPECT_EQ(net.totals().datagrams_delivered, 2u);
}

TEST(Mospf, MembershipChangeFlushesCaches) {
  MospfNetwork net(unit_delay(graph::line(6)), test_params());
  net.join(5);
  net.run_to_quiescence();
  net.send_datagram(0);
  net.run_to_quiescence();
  const auto before = net.totals();
  net.join(3);  // flushes every cache as the LSA spreads
  net.run_to_quiescence();
  net.send_datagram(0);
  net.run_to_quiescence();
  // The paper's complaint: each membership event re-triggers a
  // computation at every switch involved in forwarding.
  EXPECT_GT(net.totals().computations, before.computations);
  EXPECT_EQ(net.totals().datagrams_delivered,
            before.datagrams_delivered + 2);  // members 3 and 5
}

TEST(Mospf, DeliversToAllMembersOnRandomGraphs) {
  util::RngStream rng(9);
  graph::Graph g = graph::random_connected(25, 3.0, rng);
  g.set_uniform_delay(1e-6);
  const graph::Graph reference = g;  // keep a copy for the oracle below
  MospfNetwork net(std::move(g), test_params());
  const std::vector<graph::NodeId> members = {2, 11, 17, 23};
  for (graph::NodeId m : members) net.join(m);
  net.run_to_quiescence();
  net.send_datagram(5);
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().datagrams_delivered, members.size());
  // The source's cached tree matches the pruned SPT oracle.
  const trees::Topology* cached = net.cached_tree(5, 5);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(*cached, trees::pruned_spt(reference, 5, members));
}

TEST(Mospf, SenderNeedNotBeMember) {
  MospfNetwork net(unit_delay(graph::star(6)), test_params());
  net.join(3);
  net.run_to_quiescence();
  net.send_datagram(5);  // non-member source
  net.run_to_quiescence();
  EXPECT_EQ(net.totals().datagrams_delivered, 1u);
}

}  // namespace
}  // namespace dgmc::baselines
