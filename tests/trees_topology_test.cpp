#include "trees/topology.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dgmc::trees {
namespace {

TEST(Topology, CanonicalFormDeduplicatesAndSorts) {
  const Topology t({Edge(3, 2), Edge(0, 1), Edge(2, 3), Edge(1, 0)});
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_EQ(t.edges()[0], Edge(0, 1));
  EXPECT_EQ(t.edges()[1], Edge(2, 3));
}

TEST(Topology, EqualityIsStructural) {
  const Topology a({Edge(0, 1), Edge(1, 2)});
  const Topology b({Edge(2, 1), Edge(1, 0)});
  const Topology c({Edge(0, 1)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Topology, NodesNeighborsDegree) {
  const Topology t({Edge(0, 1), Edge(1, 2), Edge(1, 3)});
  EXPECT_EQ(t.nodes(), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(t.neighbors(1), (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(t.degree(1), 3);
  EXPECT_EQ(t.degree(2), 1);
  EXPECT_EQ(t.degree(9), 0);
}

TEST(Topology, AddRemoveIdempotent) {
  Topology t;
  t.add(Edge(0, 1));
  t.add(Edge(0, 1));
  EXPECT_EQ(t.edge_count(), 1u);
  t.remove(Edge(0, 1));
  t.remove(Edge(0, 1));
  EXPECT_TRUE(t.empty());
}

TEST(Topology, ContainsUsesNormalizedEdges) {
  Topology t;
  t.add(Edge(5, 2));
  EXPECT_TRUE(t.contains(Edge(2, 5)));
  EXPECT_FALSE(t.contains(Edge(2, 4)));
}

TEST(Topology, MergeIsUnion) {
  const Topology a({Edge(0, 1), Edge(1, 2)});
  const Topology b({Edge(1, 2), Edge(2, 3)});
  const Topology m = Topology::merge(a, b);
  EXPECT_EQ(m.edge_count(), 3u);
}

TEST(TopologyCost, SumsLinkCosts) {
  graph::Graph g(3);
  g.add_link(0, 1, 2.0);
  g.add_link(1, 2, 3.0);
  const Topology t({Edge(0, 1), Edge(1, 2)});
  EXPECT_DOUBLE_EQ(topology_cost(g, t), 5.0);
}

TEST(TopologyCost, InfiniteForMissingOrDownEdges) {
  graph::Graph g(3);
  const graph::LinkId id = g.add_link(0, 1, 2.0);
  EXPECT_EQ(topology_cost(g, Topology({Edge(0, 2)})),
            graph::kInfiniteDistance);
  g.set_link_up(id, false);
  EXPECT_EQ(topology_cost(g, Topology({Edge(0, 1)})),
            graph::kInfiniteDistance);
  EXPECT_FALSE(uses_only_live_links(g, Topology({Edge(0, 1)})));
}

TEST(IsForest, DetectsCycles) {
  EXPECT_TRUE(is_forest(Topology{}));
  EXPECT_TRUE(is_forest(Topology({Edge(0, 1), Edge(2, 3)})));
  EXPECT_FALSE(
      is_forest(Topology({Edge(0, 1), Edge(1, 2), Edge(2, 0)})));
}

TEST(Connects, RequiresSharedComponent) {
  const Topology t({Edge(0, 1), Edge(2, 3)});
  EXPECT_TRUE(connects(t, {0, 1}));
  EXPECT_FALSE(connects(t, {0, 2}));
  EXPECT_FALSE(connects(t, {0, 5}));  // 5 absent entirely
  EXPECT_TRUE(connects(t, {0}));      // single terminal is trivial
  EXPECT_TRUE(connects(Topology{}, {}));
}

TEST(IsSteinerTree, AcceptsMinimalTreeShapes) {
  EXPECT_TRUE(is_steiner_tree(Topology({Edge(0, 1)}), {0, 1}));
  // Steiner node 1 connecting terminals 0 and 2.
  EXPECT_TRUE(is_steiner_tree(Topology({Edge(0, 1), Edge(1, 2)}), {0, 2}));
  // Duplicate terminals tolerated.
  EXPECT_TRUE(is_steiner_tree(Topology({Edge(0, 1)}), {0, 1, 0}));
}

TEST(IsSteinerTree, RejectsCyclesDisconnectionAndGarbage) {
  // Cycle.
  EXPECT_FALSE(is_steiner_tree(
      Topology({Edge(0, 1), Edge(1, 2), Edge(2, 0)}), {0, 1}));
  // Terminals in different components.
  EXPECT_FALSE(
      is_steiner_tree(Topology({Edge(0, 1), Edge(2, 3)}), {0, 2}));
  // Detached extra component.
  EXPECT_FALSE(is_steiner_tree(
      Topology({Edge(0, 1), Edge(5, 6)}), {0, 1}));
}

TEST(IsSteinerTree, SingleTerminalNeedsEmptyTopology) {
  EXPECT_TRUE(is_steiner_tree(Topology{}, {3}));
  EXPECT_TRUE(is_steiner_tree(Topology{}, {}));
  EXPECT_FALSE(is_steiner_tree(Topology({Edge(0, 1)}), {0}));
}

}  // namespace
}  // namespace dgmc::trees
