// CBT vs D-GMC receiver-only comparison (paper §5):
//   * CBT trees are unions of unicast paths to a core, so their cost
//     depends on core placement — "selection of a good core node may
//     be impossible"; D-GMC's Steiner trees sidestep the problem.
//   * Shared trees concentrate traffic: with S senders every shared
//     tree edge carries up to S units, while per-source trees (the
//     MOSPF/asymmetric shape) spread it (Wei & Estrin [17]).
//
// Columns: Steiner (D-GMC) tree cost; CBT cost with a random core and
// with the best possible core, as ratios to Steiner; and max per-link
// load for the shared tree versus per-source trees.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/cbt.hpp"
#include "graph/generators.hpp"
#include "trees/load.hpp"
#include "trees/spt.hpp"
#include "trees/steiner.hpp"
#include "util/stats.hpp"

namespace {

using namespace dgmc;

double cbt_cost(const graph::Graph& g,
                const std::vector<graph::NodeId>& members,
                graph::NodeId core) {
  baselines::CbtNetwork net(g, core);
  for (graph::NodeId m : members) net.join(m);
  net.run_to_quiescence();
  return trees::topology_cost(g, net.tree());
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr &&
                     std::getenv("DGMC_QUICK")[0] != '\0';
  const std::vector<int> sizes =
      quick ? std::vector<int>{30} : std::vector<int>{30, 60, 100};
  const int graphs = quick ? 3 : 10;
  const int group_size = 8;

  std::printf(
      "# CBT vs D-GMC receiver-only trees (%d graphs/size, %d members)\n",
      graphs, group_size);
  std::printf("%6s  %14s  %20s  %20s  %16s  %16s\n", "size", "steiner cost",
              "CBT(random)/steiner", "CBT(best)/steiner", "shared maxload",
              "per-src maxload");
  for (int n : sizes) {
    util::OnlineStats steiner_cost, random_ratio, best_ratio;
    util::OnlineStats shared_load, spread_load;
    for (int i = 0; i < graphs; ++i) {
      util::RngStream rng = util::RngStream::derive(
          7, "cbt/" + std::to_string(n) + "/" + std::to_string(i));
      const graph::Graph g = graph::waxman(n, graph::WaxmanParams{}, rng);
      std::vector<graph::NodeId> members;
      {
        std::vector<graph::NodeId> all(n);
        for (graph::NodeId k = 0; k < n; ++k) all[k] = k;
        rng.shuffle(all);
        members.assign(all.begin(), all.begin() + group_size);
      }

      const trees::Topology steiner = trees::kmb_steiner(g, members);
      const double sc = trees::topology_cost(g, steiner);
      steiner_cost.add(sc);

      const graph::NodeId random_core =
          static_cast<graph::NodeId>(rng.index(n));
      random_ratio.add(cbt_cost(g, members, random_core) / sc);

      double best = graph::kInfiniteDistance;
      for (graph::NodeId core = 0; core < n; ++core) {
        best = std::min(best, cbt_cost(g, members, core));
      }
      best_ratio.add(best / sc);

      // Traffic concentration: every member multicasts once.
      shared_load.add(
          trees::max_load(trees::shared_tree_loads(g, steiner, members)));
      std::vector<trees::Topology> per_source;
      for (graph::NodeId s : members) {
        per_source.push_back(trees::pruned_spt(g, s, members));
      }
      spread_load.add(
          trees::max_load(trees::per_source_tree_loads(per_source)));
    }
    std::printf("%6d  %14s  %20s  %20s  %16s  %16s\n", n,
                util::Summary::of(steiner_cost).to_string(2).c_str(),
                util::Summary::of(random_ratio).to_string(2).c_str(),
                util::Summary::of(best_ratio).to_string(2).c_str(),
                util::Summary::of(shared_load).to_string(2).c_str(),
                util::Summary::of(spread_load).to_string(2).c_str());
  }
  std::printf(
      "# Shape check: CBT(random) > CBT(best) >= ~Steiner; shared tree "
      "max load = group size, per-source lower.\n");
  return 0;
}
