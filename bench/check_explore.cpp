// Exploration throughput of the check subsystem, and the perf contract
// of the checkpoint-restore engine (DESIGN.md §9).
//
// Headline section: serial DFS over every catalog scenario twice —
// replay-only backtracking (checkpoint interval 0, the pre-checkpoint
// engine) vs checkpoint-restore (the default interval) — reporting
// explored-states/sec for each and the speedup ratio, plus an
// equivalence verdict (identical violations, traces, visited-state
// counts; DESIGN.md §8). The two heaviest scenarios run at depth 10 to
// keep the replay baseline affordable; the rest run at depth 12, and
// the depth>=12 geometric-mean speedup is the number the acceptance
// bar tracks.
//
// Parallel section: dfs-par and random-par at jobs in {1, 2, 8},
// verifying bit-identical statistics across all three job counts (the
// determinism contract) and reporting the 1->8 wall-clock speedup.
//
// Timings land in BENCH_check_explore.json. Honors DGMC_QUICK=1
// (shallower DFS, fewer walks); exits non-zero if any equivalence or
// determinism verdict fails.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "check/explorer.hpp"
#include "exec/pool.hpp"

namespace {

using namespace dgmc;
using namespace dgmc::check;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void report(const char* scenario, const char* strategy,
            const SearchResult& r, double elapsed) {
  std::printf(
      "%-22s %-10s transitions=%9zu states=%7zu executions=%6zu "
      "elapsed=%7.3fs  %10.0f trans/s%s\n",
      scenario, strategy, r.stats.transitions, r.stats.states_seen,
      r.stats.executions, elapsed,
      elapsed > 0 ? static_cast<double>(r.stats.transitions) / elapsed : 0.0,
      r.violation.has_value() ? "  [VIOLATION]" : "");
}

double states_per_sec(const SearchResult& r, double elapsed) {
  return elapsed > 0 ? static_cast<double>(r.stats.states_seen) / elapsed
                     : 0.0;
}

/// The cross-job determinism contract (DESIGN.md §8): violation and
/// trace are bit-identical at any job count always; the full statistics
/// are guaranteed identical only when no violation cut the search short
/// (cooperative cancellation timing varies how much work the losing
/// tasks finished before stopping).
bool par_deterministic(const SearchResult& a, const SearchResult& b) {
  if (a.violation.has_value() || b.violation.has_value()) {
    return a.violation.has_value() && b.violation.has_value() &&
           a.violation->oracle == b.violation->oracle &&
           a.violation->detail == b.violation->detail &&
           a.trace.choices == b.trace.choices;
  }
  return equivalent_results(a, b, /*compare_transitions=*/true);
}

/// Replay-baseline DFS depth per scenario: the two diamond scenarios
/// with fault machinery explode at depth 12 under O(depth) replay (the
/// crash/recover one takes minutes), so their baseline runs at 10.
std::size_t dfs_depth(const std::string& scenario, bool quick) {
  if (quick) return 8;
  if (scenario == "diamond-crash-recover" || scenario == "diamond-link-fail") {
    return 10;
  }
  return 12;
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr;
  std::string entries;
  bool all_identical = true;

  // --- Replay-only vs checkpoint-restore serial DFS ------------------
  double ratio_log_sum = 0.0;
  int ratio_count = 0;
  for (const ScenarioSpec& spec : scenarios()) {
    const std::size_t depth = dfs_depth(spec.name, quick);
    SearchLimits replay_limits;
    replay_limits.max_depth = depth;
    replay_limits.checkpoint_interval = 0;
    SearchLimits ckpt_limits;
    ckpt_limits.max_depth = depth;  // checkpoint_interval: default

    const auto t0 = std::chrono::steady_clock::now();
    const SearchResult replayed = explore_dfs(spec, replay_limits);
    const double replay_s = seconds_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    const SearchResult ckpt = explore_dfs(spec, ckpt_limits);
    const double ckpt_s = seconds_since(t1);

    const bool identical = equivalent_results(replayed, ckpt);
    all_identical = all_identical && identical;
    const double speedup = ckpt_s > 0.0 ? replay_s / ckpt_s : 0.0;
    if (depth >= 12 && speedup > 0.0) {
      ratio_log_sum += std::log(speedup);
      ++ratio_count;
    }
    report(spec.name.c_str(), "dfs-replay", replayed, replay_s);
    report(spec.name.c_str(), "dfs-ckpt", ckpt, ckpt_s);
    std::printf("%-22s %-10s depth=%zu states/s %.0f -> %.0f  "
                "speedup=%.2fx  equivalence=%s\n",
                spec.name.c_str(), "dfs-ratio", depth,
                states_per_sec(replayed, replay_s),
                states_per_sec(ckpt, ckpt_s), speedup,
                identical ? "identical" : "DIVERGENT");
    if (!entries.empty()) entries += ",";
    entries +=
        "{\"scenario\":" + dgmc::bench::json_str(spec.name) +
        ",\"mode\":\"dfs-checkpoint-vs-replay\"" +
        ",\"depth\":" + std::to_string(depth) +
        ",\"checkpoint_interval\":" +
        std::to_string(ckpt_limits.checkpoint_interval) +
        ",\"replay_seconds\":" + dgmc::bench::json_num(replay_s) +
        ",\"checkpoint_seconds\":" + dgmc::bench::json_num(ckpt_s) +
        ",\"states\":" + std::to_string(ckpt.stats.states_seen) +
        ",\"replay_states_per_sec\":" +
        dgmc::bench::json_num(states_per_sec(replayed, replay_s)) +
        ",\"checkpoint_states_per_sec\":" +
        dgmc::bench::json_num(states_per_sec(ckpt, ckpt_s)) +
        ",\"speedup\":" + dgmc::bench::json_num(speedup) +
        ",\"determinism\":\"" + (identical ? "identical" : "divergent") +
        "\"}";
  }
  const double geomean =
      ratio_count > 0 ? std::exp(ratio_log_sum / ratio_count) : 0.0;
  if (ratio_count > 0) {
    std::printf("dfs checkpoint speedup, geomean over depth>=12: %.2fx\n",
                geomean);
  }

  // --- Serial delay-bounded and random strategies (throughput only) --
  for (const ScenarioSpec& spec : scenarios()) {
    {
      SearchLimits limits;
      limits.max_depth = 80;
      limits.delay_budget = quick ? 2 : 3;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_delay_bounded(spec, limits);
      report(spec.name.c_str(), "delay", r, seconds_since(start));
    }
    {
      SearchLimits limits;
      limits.max_depth = 120;
      limits.walks = quick ? 100 : 1000;
      limits.seed = 1;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_random(spec, limits);
      report(spec.name.c_str(), "random", r, seconds_since(start));
    }
  }

  // --- Parallel engine: bit-identical across jobs in {1, 2, 8} -------
  const std::size_t job_counts[] = {1, 2, 8};
  for (const ScenarioSpec& spec : scenarios()) {
    struct ParMode {
      const char* label;
      SearchResult (*run)(const ScenarioSpec&, const SearchLimits&,
                          std::size_t);
      SearchLimits limits;
    };
    SearchLimits dfs_limits;
    dfs_limits.max_depth = quick ? 8 : 10;
    SearchLimits rnd_limits;
    rnd_limits.max_depth = 120;
    rnd_limits.walks = quick ? 100 : 1000;
    rnd_limits.seed = 1;
    const ParMode modes[] = {
        {"dfs-par", explore_dfs_parallel, dfs_limits},
        {"random-par", explore_random_parallel, rnd_limits},
    };
    for (const ParMode& m : modes) {
      std::vector<SearchResult> results;
      std::vector<double> elapsed;
      for (std::size_t jobs : job_counts) {
        const auto start = std::chrono::steady_clock::now();
        results.push_back(m.run(spec, m.limits, jobs));
        elapsed.push_back(seconds_since(start));
      }
      bool identical = true;
      for (std::size_t i = 1; i < results.size(); ++i) {
        identical = identical && par_deterministic(results[0], results[i]);
      }
      all_identical = all_identical && identical;
      const double speedup =
          elapsed.back() > 0.0 ? elapsed.front() / elapsed.back() : 0.0;
      report(spec.name.c_str(), m.label, results.back(), elapsed.back());
      std::printf("%-22s %-10s jobs=1/2/8 %.3fs/%.3fs/%.3fs "
                  "speedup=%.2fx determinism=%s\n",
                  spec.name.c_str(), m.label, elapsed[0], elapsed[1],
                  elapsed[2], speedup,
                  identical ? "identical" : "DIVERGENT");
      if (!entries.empty()) entries += ",";
      entries += "{\"scenario\":" + dgmc::bench::json_str(spec.name) +
                 ",\"mode\":" + dgmc::bench::json_str(m.label) +
                 ",\"jobs1_seconds\":" + dgmc::bench::json_num(elapsed[0]) +
                 ",\"jobs2_seconds\":" + dgmc::bench::json_num(elapsed[1]) +
                 ",\"jobs8_seconds\":" + dgmc::bench::json_num(elapsed[2]) +
                 ",\"speedup\":" + dgmc::bench::json_num(speedup) +
                 ",\"transitions\":" +
                 std::to_string(results.back().stats.transitions) +
                 ",\"states\":" +
                 std::to_string(results.back().stats.states_seen) +
                 ",\"determinism\":\"" +
                 (identical ? "identical" : "divergent") + "\"}";
    }
  }

  dgmc::bench::write_bench_json(
      "check_explore",
      "{\"bench\":\"check_explore\"" +
          std::string(",\"quick\":") + (quick ? "true" : "false") +
          ",\"dfs_speedup_geomean_depth12\":" +
          dgmc::bench::json_num(geomean) +
          ",\"determinism\":\"" +
          (all_identical ? "identical" : "divergent") +
          "\",\"entries\":[" + entries + "]}");
  return all_identical ? 0 : 1;
}
