// Exploration throughput of the check subsystem: transitions/second
// and states/second for each strategy over the catalog scenarios. The
// interesting number is the cost of stateless backtracking — the ratio
// of replayed to productive transitions — which is what a depth bump
// actually buys into.
//
// The parallel engine (dfs-par, random-par) is measured twice per
// scenario — DGMC_JOBS=1 vs the full job width — reporting wall-clock
// speedup and verifying the two runs produce identical statistics (the
// determinism contract, DESIGN.md §8). Timings land in
// BENCH_check_explore.json. Honors DGMC_QUICK=1 (shallower DFS);
// exits non-zero if any jobs=1/jobs=N pair diverges.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "check/explorer.hpp"
#include "exec/pool.hpp"

namespace {

using namespace dgmc;
using namespace dgmc::check;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void report(const char* scenario, const char* strategy,
            const SearchResult& r, double elapsed) {
  std::printf(
      "%-22s %-10s transitions=%9zu states=%7zu executions=%6zu "
      "elapsed=%7.3fs  %10.0f trans/s%s\n",
      scenario, strategy, r.stats.transitions, r.stats.states_seen,
      r.stats.executions, elapsed,
      elapsed > 0 ? static_cast<double>(r.stats.transitions) / elapsed : 0.0,
      r.violation.has_value() ? "  [VIOLATION]" : "");
}

bool same_stats(const SearchResult& a, const SearchResult& b) {
  return a.stats.transitions == b.stats.transitions &&
         a.stats.executions == b.stats.executions &&
         a.stats.states_seen == b.stats.states_seen &&
         a.stats.pruned == b.stats.pruned &&
         a.stats.depth_cutoffs == b.stats.depth_cutoffs &&
         a.stats.max_depth_reached == b.stats.max_depth_reached &&
         a.violation.has_value() == b.violation.has_value() &&
         a.trace.choices == b.trace.choices;
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr;
  const std::size_t jobs = dgmc::exec::resolve_jobs(0);
  std::string entries;
  bool all_deterministic = true;

  for (const ScenarioSpec& spec : scenarios()) {
    {
      SearchLimits limits;
      limits.max_depth = quick ? 8 : 12;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_dfs(spec, limits);
      report(spec.name.c_str(), "dfs", r, seconds_since(start));
    }
    {
      SearchLimits limits;
      limits.max_depth = 80;
      limits.delay_budget = quick ? 2 : 3;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_delay_bounded(spec, limits);
      report(spec.name.c_str(), "delay", r, seconds_since(start));
    }
    {
      SearchLimits limits;
      limits.max_depth = 120;
      limits.walks = quick ? 100 : 1000;
      limits.seed = 1;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_random(spec, limits);
      report(spec.name.c_str(), "random", r, seconds_since(start));
    }

    // Parallel engine: same scenario at 1 job vs full width. The
    // speedup is the headline number; the stats comparison holds the
    // engine to its bit-identical-results contract.
    struct ParMode {
      const char* label;
      SearchResult (*run)(const ScenarioSpec&, const SearchLimits&,
                          std::size_t);
      SearchLimits limits;
    };
    SearchLimits dfs_limits;
    dfs_limits.max_depth = quick ? 8 : 12;
    SearchLimits rnd_limits;
    rnd_limits.max_depth = 120;
    rnd_limits.walks = quick ? 100 : 1000;
    rnd_limits.seed = 1;
    const ParMode modes[] = {
        {"dfs-par", explore_dfs_parallel, dfs_limits},
        {"random-par", explore_random_parallel, rnd_limits},
    };
    for (const ParMode& m : modes) {
      const auto t1 = std::chrono::steady_clock::now();
      const SearchResult serial = m.run(spec, m.limits, 1);
      const double serial_s = seconds_since(t1);
      const auto tn = std::chrono::steady_clock::now();
      const SearchResult wide = m.run(spec, m.limits, jobs);
      const double wide_s = seconds_since(tn);
      report(spec.name.c_str(), m.label, wide, wide_s);
      const bool identical = same_stats(serial, wide);
      all_deterministic = all_deterministic && identical;
      const double speedup = wide_s > 0.0 ? serial_s / wide_s : 0.0;
      std::printf("%-22s %-10s jobs=%zu serial=%.3fs parallel=%.3fs "
                  "speedup=%.2fx deterministic=%s\n",
                  spec.name.c_str(), m.label, jobs, serial_s, wide_s, speedup,
                  identical ? "yes" : "NO");
      if (!entries.empty()) entries += ",";
      entries += "{\"scenario\":" + dgmc::bench::json_str(spec.name) +
                 ",\"mode\":" + dgmc::bench::json_str(m.label) +
                 ",\"jobs\":" + std::to_string(jobs) +
                 ",\"serial_seconds\":" + dgmc::bench::json_num(serial_s) +
                 ",\"parallel_seconds\":" + dgmc::bench::json_num(wide_s) +
                 ",\"speedup\":" + dgmc::bench::json_num(speedup) +
                 ",\"transitions\":" + std::to_string(wide.stats.transitions) +
                 ",\"states\":" + std::to_string(wide.stats.states_seen) +
                 ",\"deterministic\":" + (identical ? "true" : "false") + "}";
    }
  }

  dgmc::bench::write_bench_json(
      "check_explore",
      "{\"bench\":\"check_explore\",\"jobs\":" + std::to_string(jobs) +
          ",\"deterministic\":" + (all_deterministic ? "true" : "false") +
          ",\"entries\":[" + entries + "]}");
  return all_deterministic ? 0 : 1;
}
