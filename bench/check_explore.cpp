// Exploration throughput of the check subsystem: transitions/second
// and states/second for each strategy over the catalog scenarios. The
// interesting number is the cost of stateless backtracking — the ratio
// of replayed to productive transitions — which is what a depth bump
// actually buys into. Honors DGMC_QUICK=1 (shallower DFS).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/explorer.hpp"

namespace {

using namespace dgmc;
using namespace dgmc::check;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void report(const char* scenario, const char* strategy,
            const SearchResult& r, double elapsed) {
  std::printf(
      "%-22s %-7s transitions=%9zu states=%7zu executions=%6zu "
      "elapsed=%7.3fs  %10.0f trans/s%s\n",
      scenario, strategy, r.stats.transitions, r.stats.states_seen,
      r.stats.executions, elapsed,
      elapsed > 0 ? static_cast<double>(r.stats.transitions) / elapsed : 0.0,
      r.violation.has_value() ? "  [VIOLATION]" : "");
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr;

  for (const ScenarioSpec& spec : scenarios()) {
    {
      SearchLimits limits;
      limits.max_depth = quick ? 8 : 12;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_dfs(spec, limits);
      report(spec.name.c_str(), "dfs", r, seconds_since(start));
    }
    {
      SearchLimits limits;
      limits.max_depth = 80;
      limits.delay_budget = quick ? 2 : 3;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_delay_bounded(spec, limits);
      report(spec.name.c_str(), "delay", r, seconds_since(start));
    }
    {
      SearchLimits limits;
      limits.max_depth = 120;
      limits.walks = quick ? 100 : 1000;
      limits.seed = 1;
      const auto start = std::chrono::steady_clock::now();
      const SearchResult r = explore_random(spec, limits);
      report(spec.name.c_str(), "random", r, seconds_since(start));
    }
  }
  return 0;
}
