// Ablation: MC-type generality (paper §1, §3 — "the protocol is
// generic in that it can be used with MCs of different types").
//
// Runs the Experiment-1 bursty workload for each of the three MC types
// and reports the same three metrics. The point of the table: the
// protocol machinery (computations/floodings per event, convergence)
// behaves equivalently regardless of the MC type; only the topology
// algorithm underneath changes.
#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace dgmc::sim;
  namespace mc = dgmc::mc;
  for (mc::McType type :
       {mc::McType::kSymmetric, mc::McType::kReceiverOnly,
        mc::McType::kAsymmetric}) {
    ExperimentConfig cfg;
    cfg.name = std::string("Ablation — MC type: ") + mc::to_string(type);
    cfg.timing = computation_dominant();
    cfg.workload = WorkloadKind::kBursty;
    cfg.events = 10;
    cfg.initial_members = 8;
    cfg.mc_type = type;
    cfg.network_sizes = {25, 50, 100, 200};
    cfg = apply_quick_mode(cfg);
    print_points(cfg, run_experiment(cfg));
    std::printf("\n");
  }
  return 0;
}
