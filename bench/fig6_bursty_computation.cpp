// Figure 6 (Experiment 1): bursty event generation with topology
// computation dominating communication (ATM-testbed timing: per-hop
// LSA ~4 us, Tc = 25 ms). Reports, per network size over 20 random
// graphs with 95% confidence intervals:
//   (a) topology computations ("proposals") per event,
//   (b) flooding operations per event,
//   (c) convergence time in rounds (Tf + Tc).
//
// Expected shape (paper): <~5 computations/event, <~5 floodings/event,
// convergence on the order of 10-15 rounds, all roughly flat in
// network size. Set DGMC_QUICK=1 for a reduced sweep.
#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace dgmc::sim;
  ExperimentConfig cfg;
  cfg.name = "Figure 6 — Experiment 1: bursty events, computation-"
             "dominant (Tc >> per-hop LSA time)";
  cfg.timing = computation_dominant();
  cfg.workload = WorkloadKind::kBursty;
  cfg.events = 10;
  cfg.initial_members = 8;
  cfg = apply_quick_mode(cfg);
  print_points(cfg, run_experiment(cfg));
  return 0;
}
