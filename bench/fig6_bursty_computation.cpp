// Figure 6 (Experiment 1): bursty event generation with topology
// computation dominating communication (ATM-testbed timing: per-hop
// LSA ~4 us, Tc = 25 ms). Reports, per network size over 20 random
// graphs with 95% confidence intervals:
//   (a) topology computations ("proposals") per event,
//   (b) flooding operations per event,
//   (c) convergence time in rounds (Tf + Tc).
//
// Expected shape (paper): <~5 computations/event, <~5 floodings/event,
// convergence on the order of 10-15 rounds, all roughly flat in
// network size. Set DGMC_QUICK=1 for a reduced sweep; DGMC_JOBS caps
// the parallel run. The sweep executes serially and in parallel, the
// outputs are verified byte-identical, and the timing lands in
// BENCH_fig6_bursty_computation.json.
#include "experiment_bench.hpp"

int main() {
  using namespace dgmc::sim;
  ExperimentConfig cfg;
  cfg.name = "Figure 6 — Experiment 1: bursty events, computation-"
             "dominant (Tc >> per-hop LSA time)";
  cfg.timing = computation_dominant();
  cfg.workload = WorkloadKind::kBursty;
  cfg.events = 10;
  cfg.initial_members = 8;
  return dgmc::bench::run_experiment_bench("fig6_bursty_computation", cfg);
}
