// Figure 8 (Experiment 3): "normal" traffic periods — membership
// events separated by ~10 rounds so they seldom conflict.
//
// Expected shape (paper): both topology computations per event and
// flooding operations per event sit at ~1 — "the minimal overhead
// imposed by the protocol for sparse membership updates". Convergence
// time is not defined for sparse events (paper §4.2), so the rounds
// column reports the trailing installation time and is not a paper
// series.
//
// Set DGMC_QUICK=1 for a reduced sweep; DGMC_JOBS caps the parallel
// run. Serial and parallel sweeps are verified byte-identical and the
// timing lands in BENCH_fig8_normal_traffic.json.
#include "experiment_bench.hpp"

int main() {
  using namespace dgmc::sim;
  ExperimentConfig cfg;
  cfg.name = "Figure 8 — Experiment 3: normal traffic periods "
             "(well-separated events)";
  cfg.timing = computation_dominant();
  cfg.workload = WorkloadKind::kNormal;
  cfg.normal_gap_rounds = 10.0;
  cfg.events = 20;
  cfg.initial_members = 8;
  return dgmc::bench::run_experiment_bench("fig8_normal_traffic", cfg);
}
