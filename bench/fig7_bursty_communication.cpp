// Figure 7 (Experiment 2): bursty event generation with communication
// dominating computation (WAN-like per-hop ~5 ms + 1 ms propagation,
// Tc = 1 ms, so the flooding diameter Tf >> Tc).
//
// Expected shape (paper): more topology computations per event than
// Experiment 1 but "still well under control"; floodings per event
// rise (around 10); convergence in rounds slightly better than
// Experiment 1 thanks to the long round duration.
#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace dgmc::sim;
  ExperimentConfig cfg;
  cfg.name = "Figure 7 — Experiment 2: bursty events, communication-"
             "dominant (Tf >> Tc)";
  cfg.timing = communication_dominant();
  cfg.workload = WorkloadKind::kBursty;
  cfg.events = 10;
  cfg.initial_members = 8;
  cfg = apply_quick_mode(cfg);
  print_points(cfg, run_experiment(cfg));
  return 0;
}
