// Figure 7 (Experiment 2): bursty event generation with communication
// dominating computation (WAN-like per-hop ~5 ms + 1 ms propagation,
// Tc = 1 ms, so the flooding diameter Tf >> Tc).
//
// Expected shape (paper): more topology computations per event than
// Experiment 1 but "still well under control"; floodings per event
// rise (around 10); convergence in rounds slightly better than
// Experiment 1 thanks to the long round duration.
//
// Set DGMC_QUICK=1 for a reduced sweep; DGMC_JOBS caps the parallel
// run. Serial and parallel sweeps are verified byte-identical and the
// timing lands in BENCH_fig7_bursty_communication.json.
#include "experiment_bench.hpp"

int main() {
  using namespace dgmc::sim;
  ExperimentConfig cfg;
  cfg.name = "Figure 7 — Experiment 2: bursty events, communication-"
             "dominant (Tf >> Tc)";
  cfg.timing = communication_dominant();
  cfg.workload = WorkloadKind::kBursty;
  cfg.events = 10;
  cfg.initial_members = 8;
  return dgmc::bench::run_experiment_bench("fig7_bursty_communication", cfg);
}
