// Effectiveness of partial-order + symmetry reduction (DESIGN.md §12,
// the --reduce flag).
//
// Headline: bounded DFS over the symmetric catalog scenarios plus a
// symmetry-free control, reduced vs unreduced, reporting explored
// states, transitions, wall clock, and the state reduction factor.
// The verdict row is star6-crash (automorphism group of order 24):
// the acceptance bar requires the reduced search to visit >= 3x fewer
// states (measured ~10x at depth 12), and additionally demonstrates
// that the unreduced search given exactly the transition budget the
// reduced search needed to complete the bounded sweep covers only a
// fraction of the space.
//
// Every paired run is also a soundness check: reduced and unreduced
// must agree on the violation set (here: none — the catalog scenarios
// are clean). Exits non-zero if any verdict fails, so the CI bench
// lane guards the reduction contract alongside the numbers.
//
// Results land in BENCH_check_reduction.json. Honors DGMC_QUICK=1
// (depth 10 instead of 12 on the 6-switch scenarios).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "check/explorer.hpp"

namespace {

using namespace dgmc;
using namespace dgmc::check;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  SearchResult plain;
  SearchResult reduced;
  double plain_s = 0.0;
  double reduced_s = 0.0;
  bool sound = false;
};

Row run_pair(const ScenarioSpec& spec, std::size_t depth) {
  Row row;
  SearchLimits limits;
  limits.max_depth = depth;

  auto t0 = std::chrono::steady_clock::now();
  row.plain = explore_dfs(spec, limits);
  row.plain_s = seconds_since(t0);

  limits.reduce = true;
  auto t1 = std::chrono::steady_clock::now();
  row.reduced = explore_dfs(spec, limits);
  row.reduced_s = seconds_since(t1);

  row.sound = equivalent_violation_sets(row.plain, row.reduced);
  return row;
}

double factor(std::size_t plain, std::size_t reduced) {
  return reduced > 0 ? static_cast<double>(plain) / static_cast<double>(reduced)
                     : 0.0;
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr;
  const std::size_t deep = quick ? 10 : 12;
  std::string entries;
  bool ok = true;
  double star_factor = 0.0;
  std::size_t star_budget = 0;
  std::size_t star_states = 0;

  struct Case {
    const char* name;
    std::size_t depth;
    bool verdict;  // the acceptance row: factor >= 3 enforced
  };
  const Case cases[] = {
      {"star6-crash", deep, true},
      {"ring6-crash", deep, false},
      {"triangle-2join", 12, false},  // symmetry-free control
  };

  for (const Case& c : cases) {
    const ScenarioSpec* spec = find_scenario(c.name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario %s\n", c.name);
      return 2;
    }
    const Row row = run_pair(*spec, c.depth);
    const double f = factor(row.plain.stats.states_seen,
                            row.reduced.stats.states_seen);
    ok = ok && row.sound;
    if (c.verdict) {
      star_factor = f;
      star_budget = row.reduced.stats.transitions;
      star_states = row.plain.stats.states_seen;
      ok = ok && f >= 3.0;
    }
    std::printf(
        "%-16s depth=%zu  states %7zu -> %7zu (%.2fx)  transitions "
        "%8zu -> %8zu  wall %7.3fs -> %7.3fs  sleep-pruned=%zu  "
        "violations=%s%s\n",
        c.name, c.depth, row.plain.stats.states_seen,
        row.reduced.stats.states_seen, f, row.plain.stats.transitions,
        row.reduced.stats.transitions, row.plain_s, row.reduced_s,
        row.reduced.stats.sleep_pruned, row.sound ? "agree" : "DIVERGENT",
        c.verdict ? (f >= 3.0 ? "  [>=3x OK]" : "  [>=3x FAILED]") : "");
    if (!entries.empty()) entries += ",";
    entries +=
        "{\"scenario\":" + bench::json_str(c.name) +
        ",\"depth\":" + std::to_string(c.depth) +
        ",\"states\":" + std::to_string(row.plain.stats.states_seen) +
        ",\"states_reduced\":" +
        std::to_string(row.reduced.stats.states_seen) +
        ",\"transitions\":" + std::to_string(row.plain.stats.transitions) +
        ",\"transitions_reduced\":" +
        std::to_string(row.reduced.stats.transitions) +
        ",\"sleep_pruned\":" +
        std::to_string(row.reduced.stats.sleep_pruned) +
        ",\"plain_seconds\":" + bench::json_num(row.plain_s) +
        ",\"reduced_seconds\":" + bench::json_num(row.reduced_s) +
        ",\"reduction_factor\":" + bench::json_num(f) +
        ",\"determinism\":\"" + (row.sound ? "identical" : "divergent") +
        "\"}";
  }

  // The budget demonstration: give the unreduced search exactly the
  // transition budget the reduced search needed to COMPLETE the
  // depth-bounded sweep of star6-crash. Within that budget it must
  // cover strictly fewer states than the bounded space holds — i.e.
  // the unreduced search cannot finish the job the reduced one did.
  {
    const ScenarioSpec* spec = find_scenario("star6-crash");
    SearchLimits limits;
    limits.max_depth = deep;
    limits.max_transitions = star_budget;
    const auto t0 = std::chrono::steady_clock::now();
    const SearchResult capped = explore_dfs(*spec, limits);
    const double capped_s = seconds_since(t0);
    const bool demonstrated = capped.stats.states_seen < star_states;
    ok = ok && demonstrated;
    std::printf(
        "star6-crash unreduced @ reduced budget (%zu transitions): covered "
        "%zu of %zu states — %s (%.3fs)\n",
        star_budget, capped.stats.states_seen, star_states,
        demonstrated ? "cannot complete the sweep without reduction"
                     : "completed (unexpected)",
        capped_s);
    if (!entries.empty()) entries += ",";
    entries += "{\"scenario\":\"star6-crash-budget\",\"depth\":" +
               std::to_string(deep) +
               ",\"transition_budget\":" + std::to_string(star_budget) +
               ",\"states_covered\":" +
               std::to_string(capped.stats.states_seen) +
               ",\"states_in_space\":" + std::to_string(star_states) +
               ",\"unreduced_completes\":" +
               (demonstrated ? std::string("false") : std::string("true")) +
               ",\"capped_seconds\":" + bench::json_num(capped_s) + "}";
  }

  std::printf("star6-crash state reduction factor: %.2fx (bar: >= 3x)\n",
              star_factor);
  const std::string body =
      std::string("{\"bench\":\"check_reduction\"") +
      ",\"quick\":" + (quick ? "true" : "false") +
      ",\"star_reduction_factor\":" + bench::json_num(star_factor) +
      ",\"determinism\":\"" + (ok ? "identical" : "divergent") + "\"" +
      ",\"entries\":[" + entries + "]}";
  if (!bench::write_bench_json("check_reduction", body)) {
    std::fprintf(stderr, "failed to write bench json\n");
    return 2;
  }
  return ok ? 0 : 1;
}
