// Many-MC scale benchmark: sim::ManyMcEngine at 2000 switches × 20000
// MCs (DESIGN.md §13).
//
// Three sections:
//
//   * Determinism: the engine's fingerprint and wire counters after an
//     identical workload must be bit-identical across shard counts
//     {1, 4, 16} × job counts {1, 8} (DESIGN.md §8). Exits non-zero on
//     any mismatch.
//   * Scale: builds the full population, runs churn rounds, and
//     reports sustained events/sec (membership events + link events +
//     per-MC recomputes over wall time), resident memory per MC (RSS
//     delta across the build plus the engine's own record accounting),
//     and the batched-vs-unbatched wire cost of the same workload —
//     the engine charges both models simultaneously, so the comparison
//     is exact, not run-to-run.
//   * JSON: BENCH_many_mc.json for scripts/bench_compare.py. Timed
//     metrics are marked clock_wall (machine-dependent); the wire
//     counters and the determinism verdict are exact.
//
// DGMC_QUICK=1 drops to 200 switches × 2000 MCs (the CI bench lane
// cap); the full run is the committed-baseline configuration.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "sim/many_mc.hpp"
#include "soak/soak.hpp"

namespace {

using namespace dgmc;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

sim::ManyMcParams scaled_params(bool quick) {
  sim::ManyMcParams p;
  p.switches = quick ? 200 : 2000;
  p.mcs = quick ? 2000 : 20000;
  p.members_per_mc = 8;
  p.shards = 16;
  p.jobs = 0;  // hardware width
  p.cores = 64;
  p.seed = 42;
  return p;
}

/// Identical workload at every (shards, jobs): build + churn.
std::uint64_t run_small(int shards, int jobs, sim::ManyMcStats* stats) {
  sim::ManyMcParams p;
  p.switches = 64;
  p.mcs = 512;
  p.members_per_mc = 6;
  p.shards = shards;
  p.jobs = jobs;
  p.cores = 16;
  p.seed = 7;
  sim::ManyMcEngine engine(p);
  engine.build_population();
  for (int r = 0; r < 4; ++r) engine.churn_round();
  if (stats != nullptr) *stats = engine.stats();
  return engine.fingerprint();
}

bool same_stats(const sim::ManyMcStats& a, const sim::ManyMcStats& b) {
  return a.membership_events == b.membership_events &&
         a.link_events == b.link_events &&
         a.mc_recomputes == b.mc_recomputes && a.mc_lsas == b.mc_lsas &&
         a.wire_ops_unbatched == b.wire_ops_unbatched &&
         a.wire_ops_batched == b.wire_ops_batched &&
         a.wire_bytes_unbatched == b.wire_bytes_unbatched &&
         a.wire_bytes_batched == b.wire_bytes_batched &&
         a.link_wire_ops_unbatched == b.link_wire_ops_unbatched &&
         a.link_wire_ops_batched == b.link_wire_ops_batched &&
         a.link_wire_bytes_unbatched == b.link_wire_bytes_unbatched &&
         a.link_wire_bytes_batched == b.link_wire_bytes_batched;
}

}  // namespace

int main() {
  const bool quick = [] {
    const char* env = std::getenv("DGMC_QUICK");
    return env != nullptr && std::string(env) == "1";
  }();

  // --- Determinism across (shards, jobs) ---
  sim::ManyMcStats ref_stats;
  const std::uint64_t ref = run_small(1, 1, &ref_stats);
  bool deterministic = true;
  for (const int shards : {1, 4, 16}) {
    for (const int jobs : {1, 8}) {
      sim::ManyMcStats stats;
      const std::uint64_t fp = run_small(shards, jobs, &stats);
      const bool ok = fp == ref && same_stats(stats, ref_stats);
      deterministic = deterministic && ok;
      std::printf("determinism shards=%-2d jobs=%d fingerprint=%016llx %s\n",
                  shards, jobs, static_cast<unsigned long long>(fp),
                  ok ? "ok" : "MISMATCH");
    }
  }

  // --- Scale run ---
  const sim::ManyMcParams params = scaled_params(quick);
  const double rss_before = soak::process_rss_mb();
  const auto t0 = std::chrono::steady_clock::now();
  sim::ManyMcEngine engine(params);
  engine.build_population();
  const double build_seconds = seconds_since(t0);
  const double rss_after_build = soak::process_rss_mb();

  const int churn_rounds = quick ? 8 : 16;
  const auto t1 = std::chrono::steady_clock::now();
  for (int r = 0; r < churn_rounds; ++r) engine.churn_round();
  const double churn_seconds = seconds_since(t1);
  const double total_seconds = seconds_since(t0);

  const sim::ManyMcStats& s = engine.stats();
  const double events_per_sec =
      total_seconds > 0 ? static_cast<double>(s.events()) / total_seconds
                        : 0.0;
  const double rss_kb_per_mc =
      (rss_after_build - rss_before) * 1024.0 / params.mcs;
  const double record_bytes_per_mc =
      static_cast<double>(engine.record_bytes()) /
      static_cast<double>(engine.mc_count());
  const double op_ratio =
      s.wire_ops_batched > 0
          ? static_cast<double>(s.wire_ops_unbatched) /
                static_cast<double>(s.wire_ops_batched)
          : 0.0;
  const double byte_ratio =
      s.wire_bytes_batched > 0
          ? static_cast<double>(s.wire_bytes_unbatched) /
                static_cast<double>(s.wire_bytes_batched)
          : 0.0;
  const double link_op_ratio =
      s.link_wire_ops_batched > 0
          ? static_cast<double>(s.link_wire_ops_unbatched) /
                static_cast<double>(s.link_wire_ops_batched)
          : 0.0;
  const double link_byte_ratio =
      s.link_wire_bytes_batched > 0
          ? static_cast<double>(s.link_wire_bytes_unbatched) /
                static_cast<double>(s.link_wire_bytes_batched)
          : 0.0;

  std::printf("\nscale %dx%d (shards=%d cores=%d members=%d)\n",
              params.switches, params.mcs, params.shards, params.cores,
              params.members_per_mc);
  std::printf("  build %.3fs, churn %d rounds %.3fs\n", build_seconds,
              churn_rounds, churn_seconds);
  std::printf("  events=%llu (%llu membership, %llu link, %llu recompute)"
              "  %.0f events/s\n",
              static_cast<unsigned long long>(s.events()),
              static_cast<unsigned long long>(s.membership_events),
              static_cast<unsigned long long>(s.link_events),
              static_cast<unsigned long long>(s.mc_recomputes),
              events_per_sec);
  std::printf("  memory: %.1f KiB RSS per MC, %.0f record bytes per MC\n",
              rss_kb_per_mc, record_bytes_per_mc);
  std::printf("  wire ops:   %llu unbatched vs %llu batched (%.2fx)\n",
              static_cast<unsigned long long>(s.wire_ops_unbatched),
              static_cast<unsigned long long>(s.wire_ops_batched), op_ratio);
  std::printf("  wire bytes: %llu unbatched vs %llu batched (%.2fx)\n",
              static_cast<unsigned long long>(s.wire_bytes_unbatched),
              static_cast<unsigned long long>(s.wire_bytes_batched),
              byte_ratio);
  std::printf("  link-event rounds alone: ops %.1fx, bytes %.2fx\n",
              link_op_ratio, link_byte_ratio);

  const bool batching_wins = s.wire_ops_batched < s.wire_ops_unbatched &&
                             s.wire_bytes_batched < s.wire_bytes_unbatched;
  std::printf("  batching %s\n",
              batching_wins ? "reduces both ops and bytes"
                            : "DOES NOT reduce wire cost");

  using bench::json_num;
  std::string json = "{\n \"bench\": \"many_mc\",\n \"quick\": ";
  json += quick ? "true" : "false";
  json += ",\n \"determinism\": \"";
  json += deterministic ? "identical" : "MISMATCH";
  json += "\",\n \"entries\": [\n  {\n";
  json += "   \"scenario\": \"many_mc-" + std::to_string(params.switches) +
          "x" + std::to_string(params.mcs) + "\",\n";
  json += "   \"clock_wall\": 1,\n";
  json += "   \"switches\": " + std::to_string(params.switches) + ",\n";
  json += "   \"mcs\": " + std::to_string(params.mcs) + ",\n";
  json += "   \"shards\": " + std::to_string(params.shards) + ",\n";
  json += "   \"events\": " + std::to_string(s.events()) + ",\n";
  json += "   \"events_per_sec\": " + json_num(events_per_sec) + ",\n";
  json += "   \"build_seconds\": " + json_num(build_seconds) + ",\n";
  json += "   \"churn_seconds\": " + json_num(churn_seconds) + ",\n";
  json += "   \"rss_kb_per_mc\": " + json_num(rss_kb_per_mc) + ",\n";
  json += "   \"record_bytes_per_mc\": " + json_num(record_bytes_per_mc) +
          ",\n";
  json += "   \"wire_ops_unbatched\": " +
          std::to_string(s.wire_ops_unbatched) + ",\n";
  json += "   \"wire_ops_batched\": " + std::to_string(s.wire_ops_batched) +
          ",\n";
  json += "   \"wire_bytes_unbatched\": " +
          std::to_string(s.wire_bytes_unbatched) + ",\n";
  json += "   \"wire_bytes_batched\": " +
          std::to_string(s.wire_bytes_batched) + ",\n";
  json += "   \"wire_op_reduction_speedup\": " + json_num(op_ratio) + ",\n";
  json += "   \"wire_byte_reduction_speedup\": " + json_num(byte_ratio) +
          ",\n";
  json += "   \"link_event_op_reduction_speedup\": " +
          json_num(link_op_ratio) + ",\n";
  json += "   \"link_event_byte_reduction_speedup\": " +
          json_num(link_byte_ratio) + ",\n";
  json += "   \"determinism\": \"";
  json += deterministic ? "identical" : "MISMATCH";
  json += "\"\n  }\n ]\n}";
  bench::write_bench_json("many_mc", json);

  if (!deterministic || !batching_wins) return 1;
  return 0;
}
