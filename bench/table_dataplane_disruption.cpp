// Data-plane disruption during reconfiguration (extension experiment).
//
// The paper evaluates signaling cost; this table quantifies what the
// signaling *buys*: how multicast delivery behaves while the protocol
// reconverges. A steady packet stream crosses a membership burst; we
// report the fraction of (packet, member)-deliveries achieved in three
// windows — before the burst, during convergence, and after — plus the
// same for a tree-link failure. Steady-state delivery must be 100%;
// the convergence window shows the transient cost of agility.
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/dataplane.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;

struct Windows {
  util::OnlineStats before, during, after;
};

// Sends packets every `gap` from random members across [t0, t1) and
// accumulates each packet's delivery fraction into `stats`.
struct Prober {
  sim::DgmcNetwork& net;
  sim::DataPlane& dp;
  util::RngStream& rng;
  std::vector<std::pair<std::uint64_t, std::set<graph::NodeId>>> sent;

  void probe_window(double t0, double t1, double gap) {
    for (double t = t0; t < t1; t += gap) {
      net.scheduler().schedule_at(t, [this] {
        const auto members = net.switch_at(0).members(kMc) != nullptr
                                 ? net.switch_at(0).members(kMc)->all()
                                 : std::vector<graph::NodeId>{};
        if (members.empty()) return;
        const graph::NodeId src = members[rng.index(members.size())];
        // Ground truth: the members at send time per switch 0's view.
        sent.push_back({dp.send(kMc, src),
                        std::set<graph::NodeId>(members.begin(),
                                                members.end())});
      });
    }
  }

  void harvest(util::OnlineStats& stats) {
    for (const auto& [id, truth] : sent) {
      const auto& r = dp.report(id);
      std::size_t hit = 0;
      std::size_t want = 0;
      for (graph::NodeId m : truth) {
        if (m == r.source) continue;
        ++want;
        if (std::find(r.delivered_to.begin(), r.delivered_to.end(), m) !=
            r.delivered_to.end()) {
          ++hit;
        }
      }
      if (want > 0) {
        stats.add(static_cast<double>(hit) / static_cast<double>(want));
      }
    }
    sent.clear();
  }
};

void run_trial(int n, int index, Windows& burst_w, Windows& fail_w) {
  util::RngStream rng = util::RngStream::derive(
      33, "dp/" + std::to_string(n) + "/" + std::to_string(index));
  graph::Graph g = graph::waxman(n, graph::WaxmanParams{}, rng);
  g.scale_delays(1e-6 / graph::mean_link_delay(g));

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 25e-3;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());
  sim::DataPlane dp(net, sim::DataPlane::Params{4e-6});
  Prober prober{net, dp, rng, {}};

  const auto members = sim::random_members(n, 8, rng);
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  const double round = net.flooding_diameter() + 25e-3;
  const double gap = round / 5.0;

  // --- Membership burst ---
  double t = net.scheduler().now();
  prober.probe_window(t, t + 2 * round, gap);  // "before"
  net.run_to_quiescence();
  prober.harvest(burst_w.before);

  t = net.scheduler().now();
  const auto events = sim::bursty_membership(n, members, 6, 0.5 * round,
                                             mc::MemberRole::kBoth, rng);
  for (const auto& e : events) {
    net.scheduler().schedule_at(t + e.at, [&net, e] {
      if (e.join) net.join(e.node, kMc, mc::McType::kSymmetric);
      else net.leave(e.node, kMc);
    });
  }
  prober.probe_window(t, t + 4 * round, gap);  // "during"
  net.run_to_quiescence();
  prober.harvest(burst_w.during);

  t = net.scheduler().now();
  prober.probe_window(t, t + 2 * round, gap);  // "after"
  net.run_to_quiescence();
  prober.harvest(burst_w.after);

  // --- Tree-link failure ---
  t = net.scheduler().now();
  prober.probe_window(t, t + 2 * round, gap);
  net.run_to_quiescence();
  prober.harvest(fail_w.before);

  const trees::Topology tree = net.agreed_topology(kMc);
  if (!tree.edges().empty()) {
    const graph::Edge victim = tree.edges()[rng.index(tree.edge_count())];
    t = net.scheduler().now();
    net.scheduler().schedule_at(t + gap / 2, [&net, victim] {
      net.fail_link(net.physical().find_link(victim.a, victim.b));
    });
    prober.probe_window(t, t + 4 * round, gap);
    net.run_to_quiescence();
    prober.harvest(fail_w.during);

    t = net.scheduler().now();
    prober.probe_window(t, t + 2 * round, gap);
    net.run_to_quiescence();
    prober.harvest(fail_w.after);
  }
}

void print_windows(const char* scenario, const Windows& w) {
  std::printf("%-22s %16s %16s %16s\n", scenario,
              util::Summary::of(w.before).to_string(3).c_str(),
              util::Summary::of(w.during).to_string(3).c_str(),
              util::Summary::of(w.after).to_string(3).c_str());
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr &&
                     std::getenv("DGMC_QUICK")[0] != '\0';
  const int n = 40;
  const int graphs = quick ? 3 : 10;

  Windows burst_w, fail_w;
  for (int i = 0; i < graphs; ++i) run_trial(n, i, burst_w, fail_w);

  std::printf(
      "# Data-plane delivery fraction around reconfigurations "
      "(%d switches, %d graphs, 8-member symmetric MC)\n",
      n, graphs);
  std::printf("%-22s %16s %16s %16s\n", "scenario", "before", "during",
              "after");
  print_windows("membership burst", burst_w);
  print_windows("tree-link failure", fail_w);
  std::printf(
      "# Shape check: before/after = 1.000; 'during' dips below 1 only "
      "while proposals are in flight.\n");
  return 0;
}
