// Burst-size sweep (companion to Figure 6): how the per-event costs
// and convergence scale with the number of conflicting events in the
// burst — the knob the paper's "very busy periods" narrative varies
// implicitly but never sweeps.
//
// Expected shape: computations per event stay bounded (the withdrawal
// machinery coalesces conflicts), floodings per event stay near 1 (one
// event LSA each plus a shared handful of winning proposals), and
// convergence grows sublinearly with burst size.
#include <cstdio>

#include "sim/experiment.hpp"

int main() {
  using namespace dgmc::sim;
  for (int burst : {2, 5, 10, 20, 40}) {
    ExperimentConfig cfg;
    cfg.name = "Burst sweep — " + std::to_string(burst) +
               " conflicting events (computation-dominant regime)";
    cfg.timing = computation_dominant();
    cfg.workload = WorkloadKind::kBursty;
    cfg.events = burst;
    cfg.initial_members = 8;
    cfg.network_sizes = {100};
    cfg = apply_quick_mode(cfg);
    cfg.network_sizes = {100};  // single size; sweep is over burst
    print_points(cfg, run_experiment(cfg));
    std::printf("\n");
  }
  return 0;
}
