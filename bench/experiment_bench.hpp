// Shared driver for the fig6/7/8 experiment benches.
//
// Runs the configured sweep twice — once serially (jobs = 1) and once
// on the parallel execution engine (DGMC_JOBS or hardware width) —
// prints the paper's table from the parallel run, reports the
// wall-clock speedup, verifies the two runs are byte-identical (the
// determinism contract, DESIGN.md §8), and emits BENCH_<name>.json.
// Exits non-zero if the serial and parallel sweeps diverge.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.hpp"
#include "exec/pool.hpp"
#include "sim/experiment.hpp"

namespace dgmc::bench {

inline int run_experiment_bench(const std::string& bench_name,
                                sim::ExperimentConfig cfg) {
  using clock = std::chrono::steady_clock;
  cfg = sim::apply_quick_mode(cfg);

  cfg.jobs = 1;
  const auto t0 = clock::now();
  const std::vector<sim::ExperimentPoint> serial = sim::run_experiment(cfg);
  const double serial_s = std::chrono::duration<double>(clock::now() - t0).count();

  const std::size_t jobs = exec::resolve_jobs(0);
  cfg.jobs = static_cast<int>(jobs);
  const auto t1 = clock::now();
  const std::vector<sim::ExperimentPoint> parallel = sim::run_experiment(cfg);
  const double parallel_s =
      std::chrono::duration<double>(clock::now() - t1).count();

  sim::print_points(cfg, parallel);

  const std::string serial_json = sim::serialize_points(serial);
  const std::string parallel_json = sim::serialize_points(parallel);
  const bool identical = serial_json == parallel_json;
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  std::printf(
      "parallel: jobs=%zu serial=%.3fs parallel=%.3fs speedup=%.2fx "
      "deterministic=%s\n",
      jobs, serial_s, parallel_s, speedup, identical ? "yes" : "NO");

  write_bench_json(
      bench_name,
      "{\"bench\":" + json_str(bench_name) +
          ",\"jobs\":" + std::to_string(jobs) +
          ",\"serial_seconds\":" + json_num(serial_s) +
          ",\"parallel_seconds\":" + json_num(parallel_s) +
          ",\"speedup\":" + json_num(speedup) +
          ",\"deterministic\":" + (identical ? "true" : "false") +
          ",\"points\":" + parallel_json + "}");
  return identical ? 0 : 1;
}

}  // namespace dgmc::bench
