// Protocol comparison table (paper §2 and §4 opening claims):
//
//   "In most situations, there is only one topology computation and
//    one flooding operation per event. This compares very favorably
//    with the MOSPF protocol, which requires a topology computation at
//    every switch involved in the MC."  — and the brute-force LSR MC
//    protocol "could trigger n redundant computations for every
//    existing MC".
//
// Same random graphs, same well-separated membership-event sequence,
// three protocols. Columns are topology computations per event and
// flooding operations per event.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/bruteforce.hpp"
#include "baselines/mospf.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;
constexpr double kPerHop = 4e-6;
constexpr double kTc = 25e-3;
constexpr int kInitialMembers = 8;
constexpr int kEvents = 10;

struct Row {
  util::OnlineStats dgmc_comp, dgmc_flood;
  util::OnlineStats brute_comp, brute_flood;
  util::OnlineStats mospf_comp, mospf_flood;
};

graph::Graph make_graph(int n, std::uint64_t seed, int index) {
  util::RngStream rng = util::RngStream::derive(
      seed, "cmp/" + std::to_string(n) + "/" + std::to_string(index));
  graph::Graph g = graph::waxman(n, graph::WaxmanParams{}, rng);
  g.set_uniform_delay(1e-6);
  return g;
}

std::vector<sim::MembershipEvent> make_events(
    int n, const std::vector<graph::NodeId>& members, std::uint64_t seed,
    int index) {
  util::RngStream rng = util::RngStream::derive(
      seed, "cmpev/" + std::to_string(n) + "/" + std::to_string(index));
  // Times are ignored; every harness below spaces events far apart.
  return sim::bursty_membership(n, members, kEvents, 1.0,
                                mc::MemberRole::kBoth, rng);
}

std::vector<graph::NodeId> make_members(int n, std::uint64_t seed,
                                        int index) {
  util::RngStream rng = util::RngStream::derive(
      seed, "cmpm/" + std::to_string(n) + "/" + std::to_string(index));
  return sim::random_members(n, kInitialMembers, rng);
}

void run_dgmc(const graph::Graph& g,
              const std::vector<graph::NodeId>& members,
              const std::vector<sim::MembershipEvent>& events, Row& row) {
  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = kPerHop;
  params.dgmc.computation_time = kTc;
  sim::DgmcNetwork net(g, params, mc::make_incremental_algorithm());
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  const auto before = net.totals();
  for (const auto& e : events) {
    if (e.join) net.join(e.node, kMc, mc::McType::kSymmetric);
    else net.leave(e.node, kMc);
    net.run_to_quiescence();
  }
  const auto after = net.totals();
  row.dgmc_comp.add(double(after.computations - before.computations) /
                    kEvents);
  row.dgmc_flood.add(
      double(after.mc_lsa_floodings - before.mc_lsa_floodings) / kEvents);
}

void run_brute(const graph::Graph& g,
               const std::vector<graph::NodeId>& members,
               const std::vector<sim::MembershipEvent>& events, Row& row) {
  baselines::BruteForceNetwork::Params params;
  params.per_hop_overhead = kPerHop;
  params.computation_time = kTc;
  baselines::BruteForceNetwork net(g, params,
                                   mc::make_from_scratch_algorithm());
  for (graph::NodeId m : members) {
    net.join(m);
    net.run_to_quiescence();
  }
  const auto before = net.totals();
  for (const auto& e : events) {
    if (e.join) net.join(e.node);
    else net.leave(e.node);
    net.run_to_quiescence();
  }
  const auto after = net.totals();
  row.brute_comp.add(double(after.computations - before.computations) /
                     kEvents);
  row.brute_flood.add(double(after.floodings - before.floodings) / kEvents);
}

void run_mospf(const graph::Graph& g,
               const std::vector<graph::NodeId>& members,
               const std::vector<sim::MembershipEvent>& events, Row& row) {
  baselines::MospfNetwork::Params params;
  params.per_hop_overhead = kPerHop;
  params.computation_time = kTc;
  baselines::MospfNetwork net(g, params);
  for (graph::NodeId m : members) net.join(m);
  net.run_to_quiescence();
  // Warm the caches with one datagram from a stable source.
  const graph::NodeId source = members.front();
  net.send_datagram(source);
  net.run_to_quiescence();
  const auto before = net.totals();
  for (const auto& e : events) {
    if (e.join) net.join(e.node);
    else net.leave(e.node);
    net.run_to_quiescence();
    // Data-driven: the next datagram after the change re-triggers
    // computations at every on-tree router.
    net.send_datagram(source);
    net.run_to_quiescence();
  }
  const auto after = net.totals();
  row.mospf_comp.add(double(after.computations - before.computations) /
                     kEvents);
  row.mospf_flood.add(
      double(after.membership_floodings - before.membership_floodings) /
      kEvents);
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr &&
                     std::getenv("DGMC_QUICK")[0] != '\0';
  const std::vector<int> sizes =
      quick ? std::vector<int>{25, 50} : std::vector<int>{25, 50, 100, 200};
  const int graphs = quick ? 3 : 10;
  const std::uint64_t seed = 42;

  std::printf(
      "# Protocol comparison — well-separated membership events\n"
      "# (computations and MC-control floodings per event; mean ± 95%% CI "
      "over %d graphs)\n",
      graphs);
  std::printf("%6s  %18s %18s | %18s %18s | %18s %18s\n", "size",
              "D-GMC comp/ev", "D-GMC flood/ev", "brute comp/ev",
              "brute flood/ev", "MOSPF comp/ev", "MOSPF flood/ev");
  for (int n : sizes) {
    Row row;
    for (int i = 0; i < graphs; ++i) {
      const graph::Graph g = make_graph(n, seed, i);
      const auto members = make_members(n, seed, i);
      const auto events = make_events(n, members, seed, i);
      run_dgmc(g, members, events, row);
      run_brute(g, members, events, row);
      run_mospf(g, members, events, row);
    }
    std::printf(
        "%6d  %18s %18s | %18s %18s | %18s %18s\n", n,
        util::Summary::of(row.dgmc_comp).to_string(2).c_str(),
        util::Summary::of(row.dgmc_flood).to_string(2).c_str(),
        util::Summary::of(row.brute_comp).to_string(2).c_str(),
        util::Summary::of(row.brute_flood).to_string(2).c_str(),
        util::Summary::of(row.mospf_comp).to_string(2).c_str(),
        util::Summary::of(row.mospf_flood).to_string(2).c_str());
  }
  std::printf(
      "# Shape check: D-GMC ~1 computation/event; brute-force ~n; MOSPF ~"
      "on-tree switch count.\n");
  return 0;
}
