// Tiny JSON emission helper for the bench harnesses.
//
// Each bench writes one BENCH_<name>.json next to its stdout table so
// successive PRs accumulate a machine-readable perf trajectory
// (speedups, wall-clock, and the sweep's own numbers). The emitters
// build the document as a string — the documents are small and flat,
// a JSON library would be all ceremony here.
#pragma once

#include <cstdio>
#include <string>

namespace dgmc::bench {

inline std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

/// Writes `body` to BENCH_<name>.json in the working directory (or
/// $DGMC_BENCH_DIR when set). Returns false on I/O failure.
inline bool write_bench_json(const std::string& name,
                             const std::string& body) {
  std::string dir;
  if (const char* env = std::getenv("DGMC_BENCH_DIR")) dir = env;
  const std::string path =
      (dir.empty() ? std::string() : dir + "/") + "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs(body.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
  std::fclose(f);
  if (ok) std::printf("bench json written to %s\n", path.c_str());
  return ok;
}

}  // namespace dgmc::bench
