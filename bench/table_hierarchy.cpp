// Hierarchical vs flat D-GMC (extension; paper §2 names hierarchy as
// the scalability path and "ongoing work").
//
// Same physical network — k Waxman areas chained by two inter-area
// links per adjacent pair — and the same well-separated membership
// events, run once under flat D-GMC (LSAs flood everywhere) and once
// under the two-level hierarchy (LSAs flood within the member's area;
// borders run a backbone instance). Reported per event: LSA copies
// per link (transmissions), LSA deliveries, topology computations.
//
// Expected shape: flat grows linearly with network size; hierarchical
// stays near the area size — the Θ(n) -> Θ(n/k) scalability argument.
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/hierarchy.hpp"
#include "sim/network.hpp"
#include "util/stats.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;

graph::Graph areaed_network(int area_count, int area_size,
                            std::vector<int>* areas,
                            util::RngStream& rng) {
  const int n = area_count * area_size;
  graph::Graph g(n);
  areas->assign(n, 0);
  // Each area: a Waxman graph embedded at its offset.
  for (int a = 0; a < area_count; ++a) {
    util::RngStream sub = util::RngStream::derive(
        rng.engine()(), "area/" + std::to_string(a));
    const graph::Graph part =
        graph::waxman(area_size, graph::WaxmanParams{}, sub);
    for (const graph::Link& l : part.links()) {
      g.add_link(a * area_size + l.u, a * area_size + l.v, l.cost,
                 l.delay);
    }
    for (int i = 0; i < area_size; ++i) (*areas)[a * area_size + i] = a;
  }
  // Chain adjacent areas with two random inter-area links each.
  for (int a = 0; a + 1 < area_count; ++a) {
    for (int k = 0; k < 2; ++k) {
      while (true) {
        const graph::NodeId u = static_cast<graph::NodeId>(
            a * area_size + rng.index(area_size));
        const graph::NodeId v = static_cast<graph::NodeId>(
            (a + 1) * area_size + rng.index(area_size));
        if (!g.has_link(u, v)) {
          g.add_link(u, v);
          break;
        }
      }
    }
  }
  g.set_uniform_delay(1e-6);
  return g;
}

struct Row {
  util::OnlineStats flat_trans, flat_comp;
  util::OnlineStats hier_trans, hier_comp;
};

void run_trial(int area_count, int area_size, int index, Row& row) {
  util::RngStream rng = util::RngStream::derive(
      17, "hier/" + std::to_string(area_count * area_size) + "/" +
              std::to_string(index));
  std::vector<int> areas;
  graph::Graph g = areaed_network(area_count, area_size, &areas, rng);
  const int n = g.node_count();

  sim::DgmcNetwork::Params flat_params;
  flat_params.per_hop_overhead = 4e-6;
  flat_params.dgmc.computation_time = 25e-3;
  sim::DgmcNetwork flat(g, flat_params, mc::make_incremental_algorithm());

  sim::HierarchicalNetwork::Params hier_params;
  hier_params.per_hop_overhead = 4e-6;
  hier_params.dgmc.computation_time = 25e-3;
  sim::HierarchicalNetwork hier(g, areas, hier_params,
                                mc::make_incremental_algorithm());

  // Workload: 4 initial members and 12 well-separated events, all
  // drawn uniformly over the whole network.
  std::set<graph::NodeId> current;
  while (current.size() < 4) {
    current.insert(static_cast<graph::NodeId>(rng.index(n)));
  }
  for (graph::NodeId m : current) {
    flat.join(m, kMc, mc::McType::kSymmetric);
    flat.run_to_quiescence();
    hier.join(m, kMc, mc::McType::kSymmetric);
    hier.run_to_quiescence();
  }

  const auto flat_before = flat.totals();
  const std::uint64_t flat_trans_before = flat.lsa_link_transmissions();
  const auto hier_before = hier.totals();

  const int events = 12;
  for (int e = 0; e < events; ++e) {
    const graph::NodeId node = static_cast<graph::NodeId>(rng.index(n));
    if (current.count(node) && current.size() > 2) {
      current.erase(node);
      flat.leave(node, kMc);
      hier.leave(node, kMc);
    } else {
      current.insert(node);
      flat.join(node, kMc, mc::McType::kSymmetric);
      hier.join(node, kMc, mc::McType::kSymmetric);
    }
    flat.run_to_quiescence();
    hier.run_to_quiescence();
  }
  DGMC_ASSERT(flat.converged(kMc));
  DGMC_ASSERT(hier.converged(kMc));
  DGMC_ASSERT(hier.serves_members(kMc));

  row.flat_trans.add(
      double(flat.lsa_link_transmissions() - flat_trans_before) / events);
  row.flat_comp.add(
      double(flat.totals().computations - flat_before.computations) /
      events);
  row.hier_trans.add(double(hier.totals().link_transmissions -
                            hier_before.link_transmissions) /
                     events);
  row.hier_comp.add(
      double(hier.totals().computations - hier_before.computations) /
      events);
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr &&
                     std::getenv("DGMC_QUICK")[0] != '\0';
  const int graphs = quick ? 3 : 10;
  const std::vector<std::pair<int, int>> shapes =
      quick ? std::vector<std::pair<int, int>>{{2, 15}, {4, 15}}
            : std::vector<std::pair<int, int>>{
                  {2, 15}, {4, 15}, {6, 15}, {8, 15}, {12, 15}};

  std::printf(
      "# Hierarchical vs flat D-GMC — LSA link copies and computations "
      "per membership event (%d graphs/shape, area size 15)\n",
      graphs);
  std::printf("%6s %6s  %18s %18s | %18s %18s\n", "size", "areas",
              "flat LSA/ev", "hier LSA/ev", "flat comp/ev",
              "hier comp/ev");
  for (auto [area_count, area_size] : shapes) {
    Row row;
    for (int i = 0; i < graphs; ++i) {
      run_trial(area_count, area_size, i, row);
    }
    std::printf("%6d %6d  %18s %18s | %18s %18s\n",
                area_count * area_size, area_count,
                util::Summary::of(row.flat_trans).to_string(1).c_str(),
                util::Summary::of(row.hier_trans).to_string(1).c_str(),
                util::Summary::of(row.flat_comp).to_string(2).c_str(),
                util::Summary::of(row.hier_comp).to_string(2).c_str());
  }
  std::printf(
      "# Shape check: flat LSA copies grow ~linearly with network size; "
      "hierarchical stays near the area size.\n");
  return 0;
}
