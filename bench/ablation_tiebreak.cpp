// Ablation: the equal-stamp proposal tie-break.
//
// The paper's acceptance rule (Fig 5 line 11: accept any proposal whose
// timestamp T >= E) does not order two *concurrent* proposals flooded
// with identical timestamps — both pass the test everywhere, so
// switches install whichever arrived last and can end up permanently
// split. This implementation adds a deterministic lowest-proposer-id
// tie-break (DESIGN.md). The ablation measures how often the unpatched
// rule actually diverges under simultaneous-event bursts, and confirms
// the patched rule never does.
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;

bool run_trial(int n, int index, bool tie_break) {
  util::RngStream rng = util::RngStream::derive(
      5, "tb/" + std::to_string(n) + "/" + std::to_string(index));
  graph::Graph g = graph::waxman(n, graph::WaxmanParams{}, rng);
  g.set_uniform_delay(1e-6);

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 25e-3;
  params.dgmc.equal_stamp_tie_break = tie_break;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());

  const auto members = sim::random_members(n, 6, rng);
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  // Simultaneous events: the worst case for equal-stamp races. The
  // incremental algorithm makes concurrent proposers' topologies
  // content-dependent on their own installed trees, so equal stamps
  // with different payloads are common.
  const auto events = sim::bursty_membership(n, members, 8, /*spread=*/0.0,
                                             mc::MemberRole::kBoth, rng);
  const des::SimTime t0 = net.scheduler().now();
  for (const auto& e : events) {
    net.scheduler().schedule_at(t0, [&net, e] {
      if (e.join) net.join(e.node, kMc, mc::McType::kSymmetric);
      else net.leave(e.node, kMc);
    });
  }
  net.run_to_quiescence();
  return net.converged(kMc);
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr &&
                     std::getenv("DGMC_QUICK")[0] != '\0';
  const int trials = quick ? 20 : 100;
  const int n = 30;

  std::printf(
      "# Ablation: equal-stamp tie-break — fraction of simultaneous-"
      "burst runs reaching network-wide agreement (%d trials, %d "
      "switches, 8 simultaneous events)\n",
      trials, n);
  for (bool tie_break : {true, false}) {
    int converged = 0;
    for (int i = 0; i < trials; ++i) {
      if (run_trial(n, i, tie_break)) ++converged;
    }
    std::printf("tie-break %-3s : %3d/%3d runs converged (%.0f%%)\n",
                tie_break ? "ON" : "OFF", converged, trials,
                100.0 * converged / trials);
  }
  std::printf(
      "# Shape check: ON = 100%%; OFF < 100%% (the race the paper's "
      "literal rule leaves open).\n");
  return 0;
}
