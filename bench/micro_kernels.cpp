// Microbenchmarks (google-benchmark) for the building blocks the
// simulation spends its time in: the event calendar, LSA flooding,
// shortest paths, Steiner heuristics, incremental updates, routing
// table construction, and vector-timestamp operations.
#include <benchmark/benchmark.h>

#include "core/timestamp.hpp"
#include "des/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lsr/flooding.hpp"
#include "lsr/routing.hpp"
#include "trees/incremental.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

graph::Graph bench_graph(int n) {
  util::RngStream rng(1234);
  return graph::random_connected(n, 4.0, rng);
}

std::vector<graph::NodeId> bench_terminals(int n, int k) {
  util::RngStream rng(99);
  std::vector<graph::NodeId> all(n);
  for (graph::NodeId i = 0; i < n; ++i) all[i] = i;
  rng.shuffle(all);
  all.resize(k);
  return all;
}

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    long sum = 0;
    for (int i = 0; i < events; ++i) {
      sched.schedule_at(static_cast<double>(i % 97), [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_FloodingOperation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    des::Scheduler sched;
    lsr::FloodingNetwork<int> net(sched, g, 1e-6);
    int deliveries = 0;
    net.set_receiver(
        [&](const lsr::FloodingNetwork<int>::Delivery&) { ++deliveries; });
    net.flood(0, 7);
    sched.run();
    benchmark::DoNotOptimize(deliveries);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FloodingOperation)->Arg(50)->Arg(200);

void BM_Dijkstra(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(200);

void BM_KmbSteiner(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  const auto terminals = bench_terminals(n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::kmb_steiner(g, terminals));
  }
}
BENCHMARK(BM_KmbSteiner)->Arg(50)->Arg(200);

void BM_GreedyAttach(benchmark::State& state) {
  const int n = 200;
  const graph::Graph g = bench_graph(n);
  const auto terminals = bench_terminals(n, 10);
  const trees::Topology tree = trees::kmb_steiner(g, terminals);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::greedy_attach(g, tree, n - 1));
  }
}
BENCHMARK(BM_GreedyAttach);

void BM_RoutingTableCompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsr::RoutingTable::compute(g, 0));
  }
}
BENCHMARK(BM_RoutingTableCompute)->Arg(50)->Arg(200);

void BM_VectorTimestampOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::VectorTimestamp a(n), b(n);
  for (int i = 0; i < n; i += 3) a.increment(i);
  for (int i = 0; i < n; i += 5) b.increment(i);
  for (auto _ : state) {
    core::VectorTimestamp m = a;
    m.merge_max(b);
    benchmark::DoNotOptimize(m.dominates(b));
    benchmark::DoNotOptimize(m.strictly_dominates(a));
  }
}
BENCHMARK(BM_VectorTimestampOps)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
