// Microbenchmarks (google-benchmark) for the building blocks the
// simulation spends its time in: the event calendar, LSA flooding,
// shortest paths, Steiner heuristics, incremental updates, routing
// table construction, vector-timestamp operations, the wire codec,
// and the checkpoint snapshot/restore path. Run with
// --benchmark_out=FILE --benchmark_out_format=json for the CI
// artifact; items_per_second in that JSON is the ops/sec series.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "check/executor.hpp"
#include "core/codec.hpp"
#include "core/mc_lsa.hpp"
#include "core/timestamp.hpp"
#include "des/scheduler.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lsr/flooding.hpp"
#include "lsr/routing.hpp"
#include "mc/algorithm.hpp"
#include "mc/validation.hpp"
#include "sim/network.hpp"
#include "trees/incremental.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

graph::Graph bench_graph(int n) {
  util::RngStream rng(1234);
  return graph::random_connected(n, 4.0, rng);
}

std::vector<graph::NodeId> bench_terminals(int n, int k) {
  util::RngStream rng(99);
  std::vector<graph::NodeId> all(n);
  for (graph::NodeId i = 0; i < n; ++i) all[i] = i;
  rng.shuffle(all);
  all.resize(k);
  return all;
}

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Scheduler sched;
    long sum = 0;
    for (int i = 0; i < events; ++i) {
      sched.schedule_at(static_cast<double>(i % 97), [&sum] { ++sum; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_FloodingOperation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    des::Scheduler sched;
    lsr::FloodingNetwork<int> net(sched, g, 1e-6);
    int deliveries = 0;
    net.set_receiver(
        [&](const lsr::FloodingNetwork<int>::Delivery&) { ++deliveries; });
    net.flood(0, 7);
    sched.run();
    benchmark::DoNotOptimize(deliveries);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FloodingOperation)->Arg(50)->Arg(200);

void BM_Dijkstra(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(50)->Arg(200);

void BM_KmbSteiner(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  const auto terminals = bench_terminals(n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::kmb_steiner(g, terminals));
  }
}
BENCHMARK(BM_KmbSteiner)->Arg(50)->Arg(200);

void BM_GreedyAttach(benchmark::State& state) {
  const int n = 200;
  const graph::Graph g = bench_graph(n);
  const auto terminals = bench_terminals(n, 10);
  const trees::Topology tree = trees::kmb_steiner(g, terminals);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::greedy_attach(g, tree, n - 1));
  }
}
BENCHMARK(BM_GreedyAttach);

void BM_RoutingTableCompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsr::RoutingTable::compute(g, 0));
  }
}
BENCHMARK(BM_RoutingTableCompute)->Arg(50)->Arg(200);

void BM_VectorTimestampOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::VectorTimestamp a(n), b(n);
  for (int i = 0; i < n; i += 3) a.increment(i);
  for (int i = 0; i < n; i += 5) b.increment(i);
  for (auto _ : state) {
    core::VectorTimestamp m = a;
    m.merge_max(b);
    benchmark::DoNotOptimize(m.dominates(b));
    benchmark::DoNotOptimize(m.strictly_dominates(a));
  }
}
BENCHMARK(BM_VectorTimestampOps)->Arg(100)->Arg(400);

// Copy + merge + compare at simulated-network dimensions, both sides
// of the SBO split (<= 8 components inline, more on the heap). The
// inline sizes are what every LSA in the check/bench catalogs carries.
void BM_VectorTimestampMergeCompare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::VectorTimestamp a(n), b(n);
  for (int i = 0; i < n; i += 2) a.increment(i);
  for (int i = 1; i < n; i += 2) b.increment(i);
  for (auto _ : state) {
    core::VectorTimestamp m = a;
    m.merge_max(b);
    benchmark::DoNotOptimize(m == a);
    benchmark::DoNotOptimize(m.dominates(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorTimestampMergeCompare)->Arg(4)->Arg(8)->Arg(9)->Arg(16);

// Wire codec round trip for an MC LSA whose timestamp has `n`
// components. encode_into reuses one buffer, so steady-state encoding
// is allocation-free up to the decode.
void BM_CodecEncodeDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::McLsa lsa;
  lsa.source = 0;
  lsa.event = core::McEventType::kJoin;
  lsa.mc = 1;
  lsa.stamp = core::VectorTimestamp(n);
  for (int i = 0; i < n; ++i) {
    lsa.stamp.set(i, static_cast<std::uint32_t>(i * 13 + 1));
  }
  std::vector<std::uint8_t> wire;
  for (auto _ : state) {
    core::encode_into(lsa, wire);
    benchmark::DoNotOptimize(core::decode_mc_lsa(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncodeDecode)->Arg(4)->Arg(8)->Arg(64);

void BM_CodecEncodeOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::McLsa lsa;
  lsa.source = 2;
  lsa.event = core::McEventType::kLeave;
  lsa.mc = 3;
  lsa.stamp = core::VectorTimestamp(n);
  std::vector<std::uint8_t> wire;
  for (auto _ : state) {
    core::encode_into(lsa, wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncodeOnly)->Arg(8)->Arg(64);

// The calendar save/restore pair with `events` pending records — the
// des-layer share of a checkpoint. The snapshot is reused, so this
// measures the steady-state (allocation-free) pooled cost.
void BM_SchedulerSaveRestore(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  des::Scheduler sched;
  long sum = 0;
  for (int i = 0; i < events; ++i) {
    sched.schedule_at(static_cast<double>(i % 97), [&sum] { ++sum; });
  }
  des::Scheduler::Snapshot snap;
  for (auto _ : state) {
    sched.save(snap);
    sched.restore(snap);
    benchmark::DoNotOptimize(sched.pending());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerSaveRestore)->Arg(16)->Arg(256);

// A full Executor checkpoint — network, switches, calendar, oracle
// path state — on a mid-flight catalog scenario. This is the unit the
// explorer pays once per expanded node at checkpoint interval 1, and
// what a resync costs instead of an O(depth) replay.
void BM_ExecutorSaveRestore(benchmark::State& state) {
  const check::ScenarioSpec* spec = check::find_scenario("triangle-2join");
  check::Executor exec(*spec);
  for (int i = 0; i < 6; ++i) exec.step(0);
  check::Executor::Snapshot snap;
  for (auto _ : state) {
    exec.save(snap);
    exec.restore(snap);
    benchmark::DoNotOptimize(snap.next_injection);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorSaveRestore);

// --- Convergence sweep: per-MC holder index vs all-switch scan ---
//
// sim::DgmcNetwork::converged used to scan every switch per MC; with
// the holders_ index it touches only the switches that hold state for
// the MC. The scan kernel reproduces the old loop (probe every switch,
// then the same comparisons and validity tail) through the same public
// API, so the pair isolates exactly the holder-discovery cost. Both
// share the per-MC validity tail, so the gap grows with the switch
// count — the axis the index removes from the sweep.

sim::DgmcNetwork& converged_bench_network(int switches, int mcs) {
  static std::map<std::pair<int, int>, std::unique_ptr<sim::DgmcNetwork>>
      cache;
  auto& slot = cache[{switches, mcs}];
  if (slot == nullptr) {
    util::RngStream rng(7);
    slot = std::make_unique<sim::DgmcNetwork>(
        graph::random_connected(switches, 4.0, rng), sim::DgmcNetwork::Params{},
        mc::make_incremental_algorithm());
    util::RngStream members(11);
    for (int m = 0; m < mcs; ++m) {
      for (int j = 0; j < 3; ++j) {
        slot->join(static_cast<graph::NodeId>(members.uniform_int(
                       0, switches - 1)),
                   static_cast<mc::McId>(m), mc::McType::kSymmetric);
      }
    }
    slot->run_to_quiescence();
  }
  return *slot;
}

/// The pre-index converged() loop, field for field, over the public
/// switch API: discover the holders by probing every switch, then the
/// same comparisons and validity tail the indexed version runs.
bool converged_by_scan(const sim::DgmcNetwork& net, int switches,
                       mc::McId mcid) {
  const core::DgmcSwitch* reference = nullptr;
  for (graph::NodeId n = 0; n < switches; ++n) {
    const core::DgmcSwitch& s = net.switch_at(n);
    if (!s.has_state(mcid)) continue;
    if (reference == nullptr) {
      reference = &s;
      continue;
    }
    if (!(*s.installed(mcid) == *reference->installed(mcid))) return false;
    if (!(*s.members(mcid) == *reference->members(mcid))) return false;
    if (!(*s.stamp_c(mcid) == *reference->stamp_c(mcid))) return false;
  }
  if (reference == nullptr) return true;
  for (graph::NodeId n : reference->installed(mcid)->nodes()) {
    if (!net.switch_at(n).has_state(mcid)) return false;
  }
  for (graph::NodeId n : reference->members(mcid)->all()) {
    if (!net.switch_at(n).has_state(mcid)) return false;
  }
  return mc::is_valid_topology(net.physical(), reference->mc_type(mcid),
                               *reference->members(mcid),
                               *reference->installed(mcid));
}

void BM_ConvergedScanAllMcs(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  const int mcs = static_cast<int>(state.range(1));
  const sim::DgmcNetwork& net = converged_bench_network(switches, mcs);
  for (auto _ : state) {
    bool all = true;
    for (int m = 0; m < mcs; ++m) {
      all = all && converged_by_scan(net, switches, static_cast<mc::McId>(m));
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * mcs);
}
BENCHMARK(BM_ConvergedScanAllMcs)->Args({64, 96})->Args({512, 96});

void BM_ConvergedIndexAllMcs(benchmark::State& state) {
  const int switches = static_cast<int>(state.range(0));
  const int mcs = static_cast<int>(state.range(1));
  const sim::DgmcNetwork& net = converged_bench_network(switches, mcs);
  for (auto _ : state) {
    bool all = true;
    for (int m = 0; m < mcs; ++m) {
      all = all && net.converged(static_cast<mc::McId>(m));
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * mcs);
}
BENCHMARK(BM_ConvergedIndexAllMcs)->Args({64, 96})->Args({512, 96});

}  // namespace

BENCHMARK_MAIN();
