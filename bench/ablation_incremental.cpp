// Ablation (paper §3.5): incremental update versus from-scratch
// topology computation.
//
// D-GMC is algorithm-independent; §3.5 argues implementations should
// prefer incremental updates (attach/prune a branch) and rebuild only
// on drift. This ablation runs identical bursty workloads under both
// algorithms and reports: protocol cost (computations and floodings
// per event — these should match, the protocol doesn't change),
// convergence, and the quality of the final agreed tree relative to a
// fresh KMB tree on the final member list (cost ratio >= 1; the price
// of incrementality).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/workload.hpp"
#include "trees/steiner.hpp"
#include "util/stats.hpp"

namespace {

using namespace dgmc;

constexpr mc::McId kMc = 0;

struct Outcome {
  double computations_per_event;
  double floodings_per_event;
  double tree_cost_ratio;  // agreed tree vs fresh KMB on final members
  double convergence_rounds;  // rounds of Tf + Tc(full)
};

Outcome run_one(int n, int index, bool incremental) {
  util::RngStream topo = util::RngStream::derive(
      11, "abl/" + std::to_string(n) + "/" + std::to_string(index));
  util::RngStream load = util::RngStream::derive(
      12, "abl/" + std::to_string(n) + "/" + std::to_string(index));
  graph::Graph g = graph::waxman(n, graph::WaxmanParams{}, topo);
  g.set_uniform_delay(1e-6);
  const graph::Graph reference = g;

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 25e-3;
  // §3.5's payoff: a branch attach/prune is far cheaper than a Steiner
  // computation. Model it as 2 ms vs 25 ms for the incremental arm.
  if (incremental) params.dgmc.incremental_computation_time = 2e-3;
  sim::DgmcNetwork net(std::move(g), params,
                       incremental ? mc::make_incremental_algorithm()
                                   : mc::make_from_scratch_algorithm());

  const auto members = sim::random_members(n, 8, load);
  for (graph::NodeId m : members) {
    net.join(m, kMc, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  const double round = net.flooding_diameter() + 25e-3;
  const int events = 12;
  const auto burst = sim::bursty_membership(n, members, events, 0.5 * round,
                                            mc::MemberRole::kBoth, load);
  const auto before = net.totals();
  const des::SimTime t0 = net.scheduler().now();
  for (const auto& e : burst) {
    net.scheduler().schedule_at(t0 + e.at, [&net, e] {
      if (e.join) net.join(e.node, kMc, mc::McType::kSymmetric);
      else net.leave(e.node, kMc);
    });
  }
  net.run_to_quiescence();
  const auto after = net.totals();

  Outcome out;
  out.computations_per_event =
      double(after.computations - before.computations) / events;
  out.floodings_per_event =
      double(after.mc_lsa_floodings - before.mc_lsa_floodings) / events;
  out.convergence_rounds = (net.last_install_time() - t0) / round;
  const trees::Topology agreed = net.agreed_topology(kMc);
  const auto final_members = net.switch_at(0).members(kMc)->all();
  const double fresh =
      trees::topology_cost(reference, trees::kmb_steiner(reference,
                                                         final_members));
  out.tree_cost_ratio =
      fresh > 0 ? trees::topology_cost(reference, agreed) / fresh : 1.0;
  return out;
}

}  // namespace

int main() {
  const bool quick = std::getenv("DGMC_QUICK") != nullptr &&
                     std::getenv("DGMC_QUICK")[0] != '\0';
  const std::vector<int> sizes =
      quick ? std::vector<int>{30} : std::vector<int>{30, 60, 120};
  const int graphs = quick ? 3 : 10;

  std::printf(
      "# Ablation: incremental (Tc=2ms) vs from-scratch (Tc=25ms) "
      "topology computation (bursty workload, %d graphs/size)\n",
      graphs);
  std::printf("%6s %12s  %14s  %14s  %16s  %18s\n", "size", "algorithm",
              "comp/event", "flood/event", "tree cost ratio",
              "convergence (rds)");
  for (int n : sizes) {
    for (bool incremental : {true, false}) {
      util::OnlineStats comp, flood, ratio, conv;
      for (int i = 0; i < graphs; ++i) {
        const Outcome o = run_one(n, i, incremental);
        comp.add(o.computations_per_event);
        flood.add(o.floodings_per_event);
        ratio.add(o.tree_cost_ratio);
        conv.add(o.convergence_rounds);
      }
      std::printf("%6d %12s  %14s  %14s  %16s  %18s\n", n,
                  incremental ? "incremental" : "from-scratch",
                  util::Summary::of(comp).to_string(2).c_str(),
                  util::Summary::of(flood).to_string(2).c_str(),
                  util::Summary::of(ratio).to_string(3).c_str(),
                  util::Summary::of(conv).to_string(2).c_str());
    }
  }
  std::printf(
      "# Shape check: incremental trades a small tree-cost ratio "
      "(< the 2.0 drift guard) for markedly faster convergence; "
      "flooding costs stay comparable.\n");
  return 0;
}
