// Wire overhead of the n-component vector timestamps.
//
// The paper (§2) concedes that LSR-based MC protocols target networks
// of "a few hundred switches"; the timestamp in every MC LSA costs 4
// bytes per switch, which is the concrete scalability bill. This table
// encodes representative LSAs with the production codec and reports
// bytes per LSA versus network size and tree size — flat hierarchy vs
// the two-level extension (whose per-area instances need only
// area-sized stamps in a full implementation; shown as area size 15).
// A second table measures the cost of *surviving loss*: the same
// membership workload is run through the simulator at increasing link
// loss rates with the reliable (ack + retransmit) flooding mode on,
// and the table reports how many extra per-link copies the ack
// machinery spends to keep every LSA delivered.
#include <cstdio>

#include "core/codec.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

core::McLsa sample(int network_size, int tree_edges, bool with_proposal) {
  core::McLsa lsa;
  lsa.source = 0;
  lsa.event = core::McEventType::kJoin;
  lsa.mc = 1;
  lsa.stamp = core::VectorTimestamp(network_size);
  lsa.stamp.increment(0);
  if (with_proposal) {
    std::vector<graph::Edge> edges;
    for (int i = 0; i < tree_edges; ++i) edges.emplace_back(i, i + 1);
    lsa.proposal = trees::Topology(std::move(edges));
  }
  return lsa;
}

struct LossRow {
  std::uint64_t data_copies = 0;  // per-link data transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t acks = 0;
  std::uint64_t dropped = 0;
  std::uint64_t give_ups = 0;
};

/// One fixed membership workload (12 joins, 4 leaves on a 24-switch
/// ring+chords graph) under i.i.d. loss with reliable flooding.
LossRow run_lossy_workload(double loss) {
  graph::Graph g = graph::ring(24);
  for (int i = 0; i < 12; i += 3) g.add_link(i, i + 12);
  g.set_uniform_delay(1e-6);

  sim::DgmcNetwork::Params params;
  params.per_hop_overhead = 4e-6;
  params.dgmc.computation_time = 1e-3;
  params.dgmc.partition_resync = true;
  params.dual_link_detection = true;
  params.reliable.enabled = true;
  params.reliable.initial_rto = 2e-4;
  params.reliable.max_retransmits = 12;
  sim::DgmcNetwork net(std::move(g), params,
                       mc::make_incremental_algorithm());

  fault::FaultPlan plan;
  plan.iid_loss = loss;
  net.install_faults(plan, /*seed=*/42);

  for (graph::NodeId n : {0, 2, 5, 8, 11, 14, 17, 20}) {
    net.join(n, 0, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  for (graph::NodeId n : {3, 9, 15, 21}) {
    net.join(n, 0, mc::McType::kSymmetric);
    net.run_to_quiescence();
  }
  for (graph::NodeId n : {2, 8, 14, 20}) {
    net.leave(n, 0);
    net.run_to_quiescence();
  }

  LossRow row;
  row.data_copies = net.transport().link_transmissions();
  row.retransmissions = net.transport().retransmissions();
  row.acks = net.transport().acks_sent();
  row.dropped = net.transport().messages_dropped();
  row.give_ups = net.transport().give_ups();
  return row;
}

}  // namespace

int main() {
  std::printf(
      "# MC LSA wire size (bytes) vs network size; tree proposals sized "
      "at ~n/10 edges\n");
  std::printf("%8s  %14s  %18s  %22s\n", "size", "event LSA",
              "event+proposal", "hierarchical (area=15)");
  for (int n : {25, 50, 100, 200, 400}) {
    const auto plain = core::encode(sample(n, 0, false));
    const auto with_tree = core::encode(sample(n, n / 10, true));
    // Per-area instance: stamps sized to the area, trees to the area's
    // share of the members.
    const auto area = core::encode(sample(15, 3, true));
    std::printf("%8d  %14zu  %18zu  %22zu\n", n, plain.size(),
                with_tree.size(), area.size());
  }
  std::printf(
      "# Shape check: flat LSA size grows ~4 bytes/switch; the "
      "hierarchical per-area LSA is constant.\n");

  std::printf(
      "\n# Retransmission overhead vs link loss rate (reliable flooding, "
      "fixed 16-event workload, 24 switches, seed 42)\n");
  std::printf("%8s  %12s  %14s  %10s  %10s  %10s  %12s\n", "loss", "copies",
              "retransmits", "acks", "dropped", "give-ups", "overhead");
  const LossRow base = run_lossy_workload(0.0);
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    const LossRow row = loss == 0.0 ? base : run_lossy_workload(loss);
    // Extra per-link copies (data + acks) relative to the lossless run,
    // as a fraction of its total traffic.
    const double total = static_cast<double>(row.data_copies + row.acks);
    const double base_total = static_cast<double>(base.data_copies + base.acks);
    std::printf("%7.0f%%  %12llu  %14llu  %10llu  %10llu  %10llu  %+11.1f%%\n",
                loss * 100.0,
                static_cast<unsigned long long>(row.data_copies),
                static_cast<unsigned long long>(row.retransmissions),
                static_cast<unsigned long long>(row.acks),
                static_cast<unsigned long long>(row.dropped),
                static_cast<unsigned long long>(row.give_ups),
                (total / base_total - 1.0) * 100.0);
  }
  std::printf(
      "# Every first copy is acked, so even the lossless run pays the "
      "~2x ack tax; loss adds RTO-driven retransmissions on top.\n");
  return 0;
}
