// Wire overhead of the n-component vector timestamps.
//
// The paper (§2) concedes that LSR-based MC protocols target networks
// of "a few hundred switches"; the timestamp in every MC LSA costs 4
// bytes per switch, which is the concrete scalability bill. This table
// encodes representative LSAs with the production codec and reports
// bytes per LSA versus network size and tree size — flat hierarchy vs
// the two-level extension (whose per-area instances need only
// area-sized stamps in a full implementation; shown as area size 15).
#include <cstdio>

#include "core/codec.hpp"
#include "graph/generators.hpp"
#include "trees/steiner.hpp"
#include "util/rng.hpp"

namespace {

using namespace dgmc;

core::McLsa sample(int network_size, int tree_edges, bool with_proposal) {
  core::McLsa lsa;
  lsa.source = 0;
  lsa.event = core::McEventType::kJoin;
  lsa.mc = 1;
  lsa.stamp = core::VectorTimestamp(network_size);
  lsa.stamp.increment(0);
  if (with_proposal) {
    std::vector<graph::Edge> edges;
    for (int i = 0; i < tree_edges; ++i) edges.emplace_back(i, i + 1);
    lsa.proposal = trees::Topology(std::move(edges));
  }
  return lsa;
}

}  // namespace

int main() {
  std::printf(
      "# MC LSA wire size (bytes) vs network size; tree proposals sized "
      "at ~n/10 edges\n");
  std::printf("%8s  %14s  %18s  %22s\n", "size", "event LSA",
              "event+proposal", "hierarchical (area=15)");
  for (int n : {25, 50, 100, 200, 400}) {
    const auto plain = core::encode(sample(n, 0, false));
    const auto with_tree = core::encode(sample(n, n / 10, true));
    // Per-area instance: stamps sized to the area, trees to the area's
    // share of the members.
    const auto area = core::encode(sample(15, 3, true));
    std::printf("%8d  %14zu  %18zu  %22zu\n", n, plain.size(),
                with_tree.size(), area.size());
  }
  std::printf(
      "# Shape check: flat LSA size grows ~4 bytes/switch; the "
      "hierarchical per-area LSA is constant.\n");
  return 0;
}
