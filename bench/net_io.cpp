// bench/net_io: loopback datagram throughput of the IoLoop flavors.
//
// Measures what the batched fast path actually buys: packets per
// second and datagram syscalls per packet for each loop flavor
// (epoll-packet = one syscall per datagram, epoll = recvmmsg/sendmmsg,
// uring = io_uring; skipped with a note when the kernel cannot run
// it), across a sweep of socket counts plus the headline 64-switch ×
// 96-frame fanout workload.
//
// The traffic is a lockstep blast ring: N loopback UDP sockets, socket
// i sending a burst of B datagrams to socket (i+1) % N each round, and
// the next round starting only after every datagram of the current
// round has arrived. Lockstep makes the transmit arithmetic exact: all
// B frames of a burst are emitted inside one callback, so the batched
// flavor coalesces them into ceil(B/64) sendmmsg calls and
// syscalls_per_packet — reported as tx syscalls over tx datagrams — is
// ceil(B/64)/B for the mmsg flavor and exactly 1.0 for epoll-packet,
// independent of round count and timing. bench_compare.py therefore
// checks that field EXACTLY against the committed baseline; wall-clock
// packets_per_sec is checked under --wall-tolerance. The uring flavor
// has no per-datagram syscall (one io_uring_enter covers submissions
// and completions of every socket, and arrivals under multishot recv
// cost zero), so its entries carry the timing-dependent
// enters_per_packet informationally instead.
//
// Receive-side syscalls are deliberately NOT part of the exact field:
// how many datagrams recvmmsg finds per wakeup depends on scheduling.
// The receive win shows up in packets_per_sec instead.
//
// DGMC_QUICK=1 shrinks the round count (the syscall ratio is
// round-count-independent, so quick and full runs agree on it).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "net/io_loop.hpp"

namespace {

constexpr std::size_t kPayload = 128;  // bytes per datagram

struct Workload {
  const char* name;
  int sockets;
  int burst;  // datagrams per socket per round
};

// ring1..ring64 sweep how batching scales with socket count at a fixed
// burst; fanout64x96 is the acceptance workload — 64 switches each
// emitting one frame per MC for 96 MCs in a single callback.
constexpr Workload kWorkloads[] = {
    {"ring1_b32", 1, 32},
    {"ring4_b32", 4, 32},
    {"ring16_b32", 16, 32},
    {"ring64_b32", 64, 32},
    {"fanout64x96", 64, 96},
};

struct ModeResult {
  bool ran = false;        // false = flavor unavailable (uring fallback)
  bool completed = false;  // every round's datagrams arrived in time
  dgmc::net::LoopFlavor flavor{};
  double seconds = 0;
  std::uint64_t datagrams = 0;  // datagrams received
  double pps = 0;
  double tx_syscalls_per_packet = 0;
  double enters_per_packet = 0;
  std::uint64_t requeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t pool_heap_fallbacks = 0;
};

void grow_socket_buffers(int fd) {
  // Headroom so a lockstep burst (at most 96 × 128 B per socket) can
  // never hit EAGAIN or drop in the loopback queue — a requeue would
  // add a syscall and break the exact batching arithmetic.
  const int sz = 1 << 20;
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof sz);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof sz);
}

ModeResult run_mode(dgmc::net::LoopFlavor want, const Workload& w,
                    int rounds, double deadline_s) {
  ModeResult res;
  auto loop = dgmc::net::make_io_loop(want);
  if (loop->flavor() != want) return res;  // unavailable → skipped
  res.ran = true;
  res.flavor = want;

  const int n = w.sockets;
  std::vector<int> fds(n);
  std::vector<sockaddr_in> addrs(n);
  for (int i = 0; i < n; ++i) {
    fds[i] = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fds[i] < 0) {
      std::perror("socket");
      std::exit(1);
    }
    grow_socket_buffers(fds[i]);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fds[i], reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      std::perror("bind");
      std::exit(1);
    }
    socklen_t len = sizeof addrs[i];
    ::getsockname(fds[i], reinterpret_cast<sockaddr*>(&addrs[i]), &len);
  }

  std::vector<std::uint8_t> payload(kPayload, 0xd6);
  const std::uint64_t per_round =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(w.burst);
  std::uint64_t received = 0;
  int round = 0;
  bool deadline_hit = false;

  // One round = every socket blasts its burst at its ring successor,
  // all emitted inside this single posted callback so the loop's
  // end-of-callback flush coalesces each socket's burst.
  std::function<void()> start_round = [&] {
    if (round == rounds) {
      loop->stop();
      return;
    }
    ++round;
    for (int i = 0; i < n; ++i) {
      const sockaddr_in& peer = addrs[(i + 1) % n];
      for (int b = 0; b < w.burst; ++b) {
        loop->send_udp(fds[i], peer, payload.data(), payload.size());
      }
    }
  };

  for (int i = 0; i < n; ++i) {
    loop->add_udp(fds[i], [&](const std::uint8_t*, std::size_t) {
      ++received;
      if (received == static_cast<std::uint64_t>(round) * per_round) {
        loop->post(start_round);
      }
    });
  }

  // Watchdog: a lost datagram would stall the lockstep forever; bail
  // out and report the run incomplete instead of hanging the bench.
  loop->schedule_after(deadline_s, [&] {
    deadline_hit = true;
    loop->stop();
  });

  const auto t0 = std::chrono::steady_clock::now();
  loop->post(start_round);
  loop->run();
  const auto t1 = std::chrono::steady_clock::now();

  res.completed = !deadline_hit &&
                  received == static_cast<std::uint64_t>(rounds) * per_round;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.datagrams = received;
  res.pps = res.seconds > 0 ? static_cast<double>(received) / res.seconds : 0;

  const dgmc::net::IoStats& io = loop->io_stats();
  if (io.tx_datagrams > 0) {
    res.tx_syscalls_per_packet = static_cast<double>(io.tx_syscalls) /
                                 static_cast<double>(io.tx_datagrams);
    res.enters_per_packet = static_cast<double>(io.uring_enters) /
                            static_cast<double>(io.tx_datagrams);
  }
  for (int i = 0; i < n; ++i) {
    const dgmc::net::TxCounters tx = loop->tx_counters(fds[i]);
    res.requeued += tx.requeued;
    res.dropped += tx.dropped;
  }
  res.pool_heap_fallbacks = loop->buffer_pool().counters().heap_fallbacks;

  for (int i = 0; i < n; ++i) {
    loop->remove_udp(fds[i]);
    ::close(fds[i]);
  }
  return res;
}

}  // namespace

int main() {
  const bool quick =
      std::getenv("DGMC_QUICK") != nullptr &&
      std::string(std::getenv("DGMC_QUICK")) == "1";
  const int rounds = quick ? 40 : 400;
  const double deadline_s = quick ? 20.0 : 120.0;

  const dgmc::net::LoopFlavor modes[] = {
      dgmc::net::LoopFlavor::kEpollPacket,
      dgmc::net::LoopFlavor::kEpoll,
      dgmc::net::LoopFlavor::kUring,
  };

  std::printf("net_io: lockstep loopback blast, %d rounds, %zu B payload\n",
              rounds, kPayload);
  std::printf("%-12s %-13s %10s %12s %14s %8s\n", "workload", "mode", "pkts",
              "pkts/s", "syscalls/pkt", "ok");

  std::string body = "{\n  \"bench\": \"net_io\",\n";
  body += "  \"rounds\": " + dgmc::bench::json_num(rounds) + ",\n";
  body += "  \"payload_bytes\": " + dgmc::bench::json_num(kPayload) + ",\n";
  body += "  \"entries\": [\n";
  bool first = true;
  double packet_pps_fanout = 0;
  double mmsg_pps_fanout = 0;

  for (const Workload& w : kWorkloads) {
    for (dgmc::net::LoopFlavor f : modes) {
      const ModeResult r = run_mode(f, w, rounds, deadline_s);
      if (!r.ran) {
        std::printf("%-12s %-13s %10s (flavor unavailable, skipped)\n",
                    w.name, dgmc::net::flavor_name(f), "-");
        continue;
      }
      const bool uring = f == dgmc::net::LoopFlavor::kUring;
      std::printf("%-12s %-13s %10llu %12.0f %14.5f %8s\n", w.name,
                  dgmc::net::flavor_name(f),
                  static_cast<unsigned long long>(r.datagrams), r.pps,
                  uring ? r.enters_per_packet : r.tx_syscalls_per_packet,
                  r.completed ? "yes" : "TIMEOUT");
      if (std::string(w.name) == "fanout64x96") {
        if (f == dgmc::net::LoopFlavor::kEpollPacket) {
          packet_pps_fanout = r.pps;
        }
        if (f == dgmc::net::LoopFlavor::kEpoll) mmsg_pps_fanout = r.pps;
      }

      if (!first) body += ",\n";
      first = false;
      body += "    {\n";
      body += "      \"name\": " + dgmc::bench::json_str(w.name) + ",\n";
      body += "      \"mode\": " +
              dgmc::bench::json_str(dgmc::net::flavor_name(f)) + ",\n";
      body += "      \"clock_wall\": 1,\n";
      body += "      \"converged\": " +
              dgmc::bench::json_num(r.completed ? 1 : 0) + ",\n";
      body += "      \"datagrams\": " +
              dgmc::bench::json_num(static_cast<double>(r.datagrams)) + ",\n";
      body += "      \"packets_per_sec\": " + dgmc::bench::json_num(r.pps) +
              ",\n";
      if (uring) {
        // Enter count is timing-dependent — informational field name.
        body += "      \"enters_per_packet\": " +
                dgmc::bench::json_num(r.enters_per_packet) + ",\n";
      } else {
        // Exact batching arithmetic (see file header); bench_compare
        // checks this field bit-for-bit against the baseline.
        body += "      \"syscalls_per_packet\": " +
                dgmc::bench::json_num(r.tx_syscalls_per_packet) + ",\n";
      }
      body += "      \"tx_requeued\": " +
              dgmc::bench::json_num(static_cast<double>(r.requeued)) + ",\n";
      body += "      \"tx_dropped\": " +
              dgmc::bench::json_num(static_cast<double>(r.dropped)) + ",\n";
      body += "      \"pool_heap_fallbacks\": " +
              dgmc::bench::json_num(static_cast<double>(r.pool_heap_fallbacks)) +
              "\n    }";
    }
  }

  body += "\n  ]";
  if (packet_pps_fanout > 0 && mmsg_pps_fanout > 0) {
    const double speedup = mmsg_pps_fanout / packet_pps_fanout;
    std::printf("\nfanout64x96 mmsg speedup over epoll-packet: %.2fx%s\n",
                speedup, speedup >= 2.0 ? "" : "  (below the 2x target)");
    body += ",\n  \"fanout_mmsg_speedup\": " + dgmc::bench::json_num(speedup);
  }
  body += "\n}";
  dgmc::bench::write_bench_json("net_io", body);
  return 0;
}
